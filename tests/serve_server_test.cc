// StreamingServer: end-to-end multi-site serving, determinism of per-site
// event streams across threading modes, backpressure accounting, and a
// concurrency stress aimed at the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "model/cone_sensor.h"
#include "serve/server.h"
#include "sim/trace.h"

namespace rfid {
namespace {

struct SiteTraffic {
  WarehouseLayout layout;
  std::vector<ServeRecord> records;
  TagId first_object_tag = 0;
};

/// A small warehouse site flattened to raw serve records (one location
/// report plus the epoch's readings per simulated epoch, in time order).
SiteTraffic MakeSiteTraffic(SiteId site, uint64_t seed) {
  WarehouseConfig wc;
  wc.num_shelves = 2;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 4;
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  EXPECT_TRUE(layout.ok());
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, seed);
  const SimulatedTrace trace = gen.Generate();

  SiteTraffic traffic;
  traffic.layout = layout.value();
  traffic.first_object_tag = wc.first_object_tag;
  for (const SimEpoch& epoch : trace.epochs) {
    const SyncedEpoch& obs = epoch.observations;
    if (obs.has_location) {
      ReaderLocationReport report;
      report.time = obs.time;
      report.location = obs.reported_location;
      report.has_heading = obs.has_heading;
      report.heading = obs.reported_heading;
      traffic.records.push_back(ServeRecord::Location(site, report));
    }
    for (TagId tag : obs.tags) {
      traffic.records.push_back(ServeRecord::Reading(site, {obs.time, tag}));
    }
  }
  return traffic;
}

ServeConfig SmallServeConfig(int num_shards, int num_threads) {
  ServeConfig config;
  config.num_shards = num_shards;
  config.num_threads = num_threads;
  config.epoch_seconds = 1.0;
  config.max_lateness_seconds = 2.0;
  config.engine.factored.num_reader_particles = 30;
  config.engine.factored.num_object_particles = 100;
  config.engine.factored.seed = 41;
  config.engine.emitter.delay_seconds = 5.0;
  return config;
}

WorldModel SiteModel(const SiteTraffic& traffic) {
  return MakeWorldModel(traffic.layout, std::make_unique<ConeSensorModel>());
}

/// Thread-safe per-site event log (callbacks fire on shard lanes).
struct EventLog {
  std::mutex mu;
  std::map<SiteId, std::vector<LocationEvent>> events;

  SubscriptionBus::EventCallback Callback() {
    return [this](SiteId site, const LocationEvent& event) {
      std::lock_guard<std::mutex> lock(mu);
      events[site].push_back(event);
    };
  }
};

void ExpectIdenticalEventStreams(
    const std::map<SiteId, std::vector<LocationEvent>>& a,
    const std::map<SiteId, std::vector<LocationEvent>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [site, events_a] : a) {
    const auto it = b.find(site);
    ASSERT_NE(it, b.end()) << "site " << site;
    const auto& events_b = it->second;
    ASSERT_EQ(events_a.size(), events_b.size()) << "site " << site;
    for (size_t i = 0; i < events_a.size(); ++i) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(events_a[i].time, events_b[i].time);
      EXPECT_EQ(events_a[i].tag, events_b[i].tag);
      EXPECT_EQ(events_a[i].location, events_b[i].location);
    }
  }
}

TEST(StreamingServerTest, InlineTwoSitesServeEventsAndStats) {
  const SiteTraffic site1 = MakeSiteTraffic(1, 301);
  const SiteTraffic site2 = MakeSiteTraffic(2, 302);
  std::vector<SiteSpec> specs;
  specs.push_back({1, SiteModel(site1)});
  specs.push_back({2, SiteModel(site2)});
  auto server = StreamingServer::Create(std::move(specs),
                                        SmallServeConfig(2, 1));
  ASSERT_TRUE(server.ok());

  EventLog log;
  server.value()->bus().SubscribeEvents(log.Callback());

  size_t pushed = 0;
  for (const auto* traffic : {&site1, &site2}) {
    for (const ServeRecord& record : traffic->records) {
      ASSERT_TRUE(server.value()->Ingest(record));
      ++pushed;
    }
  }
  server.value()->Pump();
  server.value()->Flush();

  EXPECT_GT(log.events[1].size(), 0u);
  EXPECT_GT(log.events[2].size(), 0u);

  const ServerStatsSnapshot stats = server.value()->Stats();
  EXPECT_EQ(stats.TotalRecordsProcessed(), pushed);
  EXPECT_EQ(stats.TotalDroppedLate(), 0u);
  EXPECT_EQ(stats.TotalEventsDispatched(),
            log.events[1].size() + log.events[2].size());
  const std::string json = server.value()->StatsJson();
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"engine\""), std::string::npos);

  // Estimates are reachable through the site pipeline.
  const SitePipeline* pipeline = server.value()->FindSite(1);
  ASSERT_NE(pipeline, nullptr);
  EXPECT_TRUE(pipeline->engine()
                  .EstimateObject(site1.first_object_tag)
                  .has_value());
  EXPECT_EQ(server.value()->FindSite(99), nullptr);
}

TEST(StreamingServerTest, ScanCompleteSubscriptionsEmitOnFlush) {
  // Regression: the serving path never called NotifyScanComplete, so a
  // kOnScanComplete emitter policy produced zero events through the bus —
  // every epoch deferred to a scan boundary that never came. Flush() is
  // that boundary now.
  const SiteTraffic site1 = MakeSiteTraffic(1, 321);
  std::vector<SiteSpec> specs;
  specs.push_back({1, SiteModel(site1)});
  ServeConfig config = SmallServeConfig(1, 1);
  config.engine.emitter.policy = EmitPolicy::kOnScanComplete;
  auto server = StreamingServer::Create(std::move(specs), config);
  ASSERT_TRUE(server.ok());

  EventLog log;
  server.value()->bus().SubscribeEvents(log.Callback());
  for (const ServeRecord& record : site1.records) {
    ASSERT_TRUE(server.value()->Ingest(record));
  }
  server.value()->Pump();
  // Mid-stream the policy holds everything back by design.
  EXPECT_EQ(log.events[1].size(), 0u);

  server.value()->Flush();
  EXPECT_GT(log.events[1].size(), 0u);

  // A second Flush with no new epochs is a no-op, not a duplicate scan.
  const size_t after_first_flush = log.events[1].size();
  server.value()->Flush();
  EXPECT_EQ(log.events[1].size(), after_first_flush);

  // The dispatch is counted like any other, and the scan boundary stamps
  // every event with the final epoch's time.
  const ServerStatsSnapshot stats = server.value()->Stats();
  EXPECT_EQ(stats.TotalEventsDispatched(), log.events[1].size());
  ASSERT_EQ(stats.shards.size(), 1u);
  ASSERT_EQ(stats.shards[0].sites.size(), 1u);
  EXPECT_EQ(stats.shards[0].sites[0].scan_completes, 1u);
  const double last_time = site1.records.back().kind ==
                                   ServeRecord::Kind::kReading
                               ? site1.records.back().reading.time
                               : site1.records.back().location.time;
  for (const LocationEvent& event : log.events[1]) {
    EXPECT_GE(event.time + 1e-9, std::floor(last_time));
  }
}

TEST(StreamingServerTest, ThreadedRunMatchesInlineRunBitwise) {
  const SiteTraffic site1 = MakeSiteTraffic(1, 311);
  const SiteTraffic site2 = MakeSiteTraffic(2, 312);

  // Inline reference run: single thread, pump after every ingest to get the
  // earliest possible processing schedule.
  EventLog inline_log;
  {
    std::vector<SiteSpec> specs;
    specs.push_back({1, SiteModel(site1)});
    specs.push_back({2, SiteModel(site2)});
    auto server = StreamingServer::Create(std::move(specs),
                                          SmallServeConfig(2, 1));
    ASSERT_TRUE(server.ok());
    server.value()->bus().SubscribeEvents(inline_log.Callback());
    for (const auto* traffic : {&site1, &site2}) {
      for (const ServeRecord& record : traffic->records) {
        ASSERT_TRUE(server.value()->Ingest(record));
      }
      server.value()->Pump();
    }
    server.value()->Flush();
  }

  // Threaded run: driver thread + pool lanes + two concurrent producers.
  // Each site's records keep their relative order (one producer per site),
  // so every site's event stream must be bit-identical to the inline run
  // no matter how the shards interleave.
  EventLog threaded_log;
  {
    std::vector<SiteSpec> specs;
    specs.push_back({1, SiteModel(site1)});
    specs.push_back({2, SiteModel(site2)});
    auto server = StreamingServer::Create(std::move(specs),
                                          SmallServeConfig(2, 3));
    ASSERT_TRUE(server.ok());
    server.value()->bus().SubscribeEvents(threaded_log.Callback());
    server.value()->Start();
    std::vector<std::thread> producers;
    for (const auto* traffic : {&site1, &site2}) {
      producers.emplace_back([&server, traffic] {
        for (const ServeRecord& record : traffic->records) {
          ASSERT_TRUE(server.value()->Ingest(record));
        }
      });
    }
    for (auto& producer : producers) producer.join();
    server.value()->Stop();
    server.value()->Flush();
  }

  ExpectIdenticalEventStreams(inline_log.events, threaded_log.events);
}

TEST(StreamingServerTest, UnknownSiteAndBadConfigRejected) {
  const SiteTraffic site1 = MakeSiteTraffic(1, 321);
  std::vector<SiteSpec> specs;
  specs.push_back({1, SiteModel(site1)});
  auto server =
      StreamingServer::Create(std::move(specs), SmallServeConfig(2, 1));
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server.value()->Ingest(ServeRecord::Reading(99, {0.0, 1})));

  ServeConfig bad = SmallServeConfig(0, 1);
  std::vector<SiteSpec> specs2;
  specs2.push_back({1, SiteModel(site1)});
  EXPECT_FALSE(StreamingServer::Create(std::move(specs2), bad).ok());

  ServeConfig basic = SmallServeConfig(1, 1);
  basic.engine.filter = EngineConfig::FilterKind::kBasic;
  std::vector<SiteSpec> specs3;
  specs3.push_back({1, SiteModel(site1)});
  EXPECT_FALSE(StreamingServer::Create(std::move(specs3), basic).ok());

  std::vector<SiteSpec> dup;
  dup.push_back({1, SiteModel(site1)});
  dup.push_back({1, SiteModel(site1)});
  EXPECT_FALSE(
      StreamingServer::Create(std::move(dup), SmallServeConfig(2, 1)).ok());
}

TEST(StreamingServerTest, DropModeCountsRejections) {
  const SiteTraffic site1 = MakeSiteTraffic(1, 331);
  ServeConfig config = SmallServeConfig(1, 1);
  config.queue_capacity = 4;
  config.block_when_full = false;
  std::vector<SiteSpec> specs;
  specs.push_back({1, SiteModel(site1)});
  auto server = StreamingServer::Create(std::move(specs), config);
  ASSERT_TRUE(server.ok());

  size_t accepted = 0, rejected = 0;
  for (size_t i = 0; i < 10 && i < site1.records.size(); ++i) {
    server.value()->Ingest(site1.records[i]) ? ++accepted : ++rejected;
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, 6u);
  server.value()->Pump();
  const ServerStatsSnapshot stats = server.value()->Stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].queue.rejected_full, 6u);
  EXPECT_EQ(stats.shards[0].queue.high_water, 4u);
}

TEST(StreamingServerTest, RecordsIngestedBeforeStartAreProcessed) {
  // Ingest() does not signal the driver until running_ is set, so Start()
  // must prime the wakeup itself or pre-staged records would sit unpumped.
  const SiteTraffic site1 = MakeSiteTraffic(1, 341);
  std::vector<SiteSpec> specs;
  specs.push_back({1, SiteModel(site1)});
  auto server =
      StreamingServer::Create(std::move(specs), SmallServeConfig(1, 2));
  ASSERT_TRUE(server.ok());
  for (const ServeRecord& record : site1.records) {
    ASSERT_TRUE(server.value()->Ingest(record));
  }
  server.value()->Start();
  // No further ingests: the primed driver alone must drain the queue.
  for (int i = 0; i < 200; ++i) {
    if (server.value()->Stats().TotalRecordsProcessed() ==
        site1.records.size()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.value()->Stop();
  EXPECT_EQ(server.value()->Stats().TotalRecordsProcessed(),
            site1.records.size());
}

TEST(StreamingServerTest, StopClosesQueuesAndShardPinsRoute) {
  const SiteTraffic site1 = MakeSiteTraffic(1, 351);
  ServeConfig config = SmallServeConfig(4, 1);
  // Pin the site away from its hash route.
  const int hashed = ShardRouter(4).ShardOf(1);
  const int pinned = (hashed + 1) % 4;
  config.shard_pins.push_back({1, pinned});
  std::vector<SiteSpec> specs;
  specs.push_back({1, SiteModel(site1)});
  auto server = StreamingServer::Create(std::move(specs), config);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(server.value()->router().ShardOf(1), pinned);

  ASSERT_TRUE(server.value()->Ingest(site1.records[0]));
  server.value()->Pump();
  const ServerStatsSnapshot stats = server.value()->Stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.shards[static_cast<size_t>(pinned)].queue.pushed, 1u);

  // After Stop the ingest path fails fast instead of queueing into a
  // server nobody will pump.
  server.value()->Stop();
  EXPECT_FALSE(server.value()->Ingest(site1.records[1]));

  // Restart reopens the queues: the server serves again.
  server.value()->Start();
  EXPECT_TRUE(server.value()->Ingest(site1.records[1]));
  server.value()->Stop();
  EXPECT_EQ(server.value()->Stats().TotalRecordsProcessed(), 2u);

  // An out-of-range pin is a config error.
  ServeConfig bad = SmallServeConfig(2, 1);
  bad.shard_pins.push_back({1, 2});
  std::vector<SiteSpec> specs2;
  specs2.push_back({1, SiteModel(site1)});
  EXPECT_FALSE(StreamingServer::Create(std::move(specs2), bad).ok());
}

TEST(StreamingServerTest, ConcurrentIngestStressWithStatsPolling) {
  // Aimed at the TSan CI job: concurrent producers, a running driver, the
  // pool fanning shards, stats polled mid-flight, subscriptions firing.
  const int kSites = 4;
  std::vector<SiteTraffic> traffic;
  std::vector<SiteSpec> specs;
  for (int s = 0; s < kSites; ++s) {
    traffic.push_back(MakeSiteTraffic(static_cast<SiteId>(s + 1),
                                      400 + static_cast<uint64_t>(s)));
    specs.push_back({static_cast<SiteId>(s + 1), SiteModel(traffic.back())});
  }
  ServeConfig config = SmallServeConfig(3, 2);
  config.queue_capacity = 64;  // Small enough to exercise backpressure.
  auto server = StreamingServer::Create(std::move(specs), config);
  ASSERT_TRUE(server.ok());

  EventLog log;
  server.value()->bus().SubscribeEvents(log.Callback());
  server.value()->Start();

  std::vector<std::thread> producers;
  for (int s = 0; s < kSites; ++s) {
    producers.emplace_back([&server, &traffic, s] {
      for (const ServeRecord& record : traffic[static_cast<size_t>(s)].records) {
        ASSERT_TRUE(server.value()->Ingest(record));
      }
    });
  }
  for (int i = 0; i < 5; ++i) {
    (void)server.value()->StatsJson();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& producer : producers) producer.join();
  server.value()->Stop();
  server.value()->Flush();

  size_t total_records = 0;
  for (const auto& t : traffic) total_records += t.records.size();
  const ServerStatsSnapshot stats = server.value()->Stats();
  EXPECT_EQ(stats.TotalRecordsProcessed(), total_records);
  for (int s = 0; s < kSites; ++s) {
    EXPECT_GT(log.events[static_cast<SiteId>(s + 1)].size(), 0u);
  }
}

TEST(StreamingServerTest, ConcurrentStartStopIsSerialized) {
  // Start() and Stop() both touch the driver_ thread handle; before the
  // lifecycle lock, a start racing a stop could assign the handle while the
  // stop joined it (a data race TSan flags and a potential
  // std::terminate from assigning over a joinable thread). Hammer the
  // transitions from several threads with traffic flowing — the TSan CI
  // job runs this test.
  const SiteTraffic traffic = MakeSiteTraffic(1, 77);
  auto server = StreamingServer::Create({{1, SiteModel(traffic)}},
                                        SmallServeConfig(1, 2));
  ASSERT_TRUE(server.ok());
  StreamingServer& srv = *server.value();

  std::atomic<bool> stop_flag{false};
  std::vector<std::thread> cyclers;
  for (int t = 0; t < 3; ++t) {
    cyclers.emplace_back([&srv, &stop_flag] {
      while (!stop_flag.load()) {
        srv.Start();
        std::this_thread::yield();
        srv.Stop();
      }
    });
  }
  std::thread producer([&srv, &traffic, &stop_flag] {
    size_t i = 0;
    while (!stop_flag.load()) {
      // Drops are expected while stopped (queues closed); the point is
      // that ingest never crashes or wedges across restarts.
      (void)srv.Ingest(traffic.records[i % traffic.records.size()]);
      ++i;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop_flag.store(true);
  for (auto& cycler : cyclers) cycler.join();
  producer.join();

  srv.Stop();
  srv.Flush();
  // The server is still coherent: a final inline pump accepts nothing new
  // (queues closed) and stats assemble without tripping assertions.
  EXPECT_EQ(srv.Pump(), 0u);
  (void)srv.Stats();
}

}  // namespace
}  // namespace rfid
