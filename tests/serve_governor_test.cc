// Load-shedding governor: the hysteresis ladder in isolation, and the
// degradation path end-to-end through a StreamingServer under a burst that
// overflows its ingest queue.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "model/cone_sensor.h"
#include "serve/load_governor.h"
#include "serve/server.h"
#include "sim/trace.h"

namespace rfid {
namespace {

LoadShedConfig TestShedConfig() {
  LoadShedConfig c;
  c.enabled = true;
  return c;
}

TEST(LoadShedGovernorTest, EscalatesAndDeescalatesWithHysteresis) {
  LoadShedGovernor governor(TestShedConfig());
  EXPECT_EQ(governor.level(), LoadShedLevel::kNormal);

  // Below every enter threshold: nothing happens.
  EXPECT_EQ(governor.Update(0.4).level, LoadShedLevel::kNormal);
  // Crossing shrink_enter engages the first rung.
  EXPECT_EQ(governor.Update(0.55).level, LoadShedLevel::kShrink);
  // Occupancy sagging into the hysteresis band holds the rung (exits are
  // strict: sitting exactly at shrink_exit still holds)...
  EXPECT_EQ(governor.Update(0.30).level, LoadShedLevel::kShrink);
  EXPECT_EQ(governor.Update(0.25).level, LoadShedLevel::kShrink);
  // ...and only dropping below shrink_exit releases it.
  EXPECT_EQ(governor.Update(0.20).level, LoadShedLevel::kNormal);

  // A saturated queue jumps straight up the ladder in one observation.
  const LoadShedDecision full = governor.Update(1.0);
  EXPECT_EQ(full.level, LoadShedLevel::kShed);
  EXPECT_TRUE(full.shed_records);
  EXPECT_LT(full.budget_scale, 1.0);
  EXPECT_LT(full.hibernate_scale, 1.0);
  EXPECT_EQ(governor.escalations(), 4u);  // 1 (shrink) + 3 (normal->shed).

  // Draining de-escalates one rung per strictly-undercut exit threshold.
  EXPECT_EQ(governor.Update(0.60).level, LoadShedLevel::kShed);  // == exit
  EXPECT_EQ(governor.Update(0.55).level, LoadShedLevel::kHibernate);
  EXPECT_EQ(governor.Update(0.40).level, LoadShedLevel::kHibernate);
  EXPECT_EQ(governor.Update(0.0).level, LoadShedLevel::kNormal);
  EXPECT_EQ(governor.deescalations(), 4u);
}

TEST(LoadShedGovernorTest, EqualEnterAndExitDoesNotOscillate) {
  // exit == enter passes validation; the rung must then engage at the
  // threshold and hold there, not flap within a single Update.
  LoadShedConfig config = TestShedConfig();
  config.shrink_enter = 0.5;
  config.shrink_exit = 0.5;
  ASSERT_TRUE(ValidateLoadShedConfig(config).ok());
  LoadShedGovernor governor(config);
  EXPECT_EQ(governor.Update(0.5).level, LoadShedLevel::kShrink);
  EXPECT_EQ(governor.Update(0.5).level, LoadShedLevel::kShrink);
  EXPECT_EQ(governor.escalations(), 1u);
  EXPECT_EQ(governor.deescalations(), 0u);
  EXPECT_EQ(governor.Update(0.49).level, LoadShedLevel::kNormal);
}

TEST(LoadShedGovernorTest, DecisionPerLevel) {
  const LoadShedConfig config = TestShedConfig();
  LoadShedGovernor governor(config);

  const LoadShedDecision normal = governor.Update(0.0);
  EXPECT_EQ(normal.budget_scale, 1.0);
  EXPECT_EQ(normal.hibernate_scale, 1.0);
  EXPECT_FALSE(normal.shed_records);

  const LoadShedDecision shrink = governor.Update(0.6);
  EXPECT_EQ(shrink.level, LoadShedLevel::kShrink);
  EXPECT_EQ(shrink.budget_scale, config.shrink_budget_scale);
  EXPECT_EQ(shrink.hibernate_scale, 1.0);
  EXPECT_FALSE(shrink.shed_records);

  const LoadShedDecision hibernate = governor.Update(0.8);
  EXPECT_EQ(hibernate.level, LoadShedLevel::kHibernate);
  EXPECT_EQ(hibernate.budget_scale, config.hibernate_budget_scale);
  EXPECT_EQ(hibernate.hibernate_scale, config.hibernate_after_scale);
  EXPECT_FALSE(hibernate.shed_records);
}

TEST(ArrivalRateEwmaTest, ConvergesToSteadyRate) {
  // 10 events/sec fed one at a time: after several taus the estimate must
  // sit at the true rate.
  ArrivalRateEwma ewma(1.0);
  double now = 0.0;
  for (int i = 0; i < 100; ++i) {
    now += 0.1;
    ewma.Observe(now, 1);
  }
  EXPECT_NEAR(ewma.RatePerSec(now), 10.0, 0.5);
}

TEST(ArrivalRateEwmaTest, DecaysWhenIdle) {
  ArrivalRateEwma ewma(1.0);
  double now = 0.0;
  for (int i = 0; i < 50; ++i) {
    now += 0.1;
    ewma.Observe(now, 1);
  }
  const double busy = ewma.RatePerSec(now);
  ASSERT_GT(busy, 5.0);
  // A silent stream must read as rate -> 0, not hold its last value.
  EXPECT_LT(ewma.RatePerSec(now + 5.0), busy * 0.01);
  EXPECT_EQ(ewma.RatePerSec(now), busy);  // No observation, no history change.
}

TEST(ArrivalRateEwmaTest, BatchObservationsWeightByInterval) {
  // 50 events in one 5-second batch == 10/sec, same as 1-per-100ms.
  ArrivalRateEwma ewma(1.0);
  ewma.Observe(0.0, 1);
  double now = 0.0;
  for (int i = 0; i < 10; ++i) {
    now += 5.0;
    ewma.Observe(now, 50);
  }
  EXPECT_NEAR(ewma.RatePerSec(now), 10.0, 1.0);
}

TEST(LoadShedGovernorTest, RateSignalEscalatesBeforeQueueFills) {
  // The burst scenario the signal exists for: the pump keeps the queue
  // nearly empty, but arrivals run at 4x the configured full-rate. The
  // occupancy-only governor would sit at kNormal; the rate-aware one must
  // escalate all the way to kShed (pressure = 4.0 -> clamped to 1.0).
  LoadShedConfig config = TestShedConfig();
  config.rate_full_per_sec = 100.0;
  ASSERT_TRUE(ValidateLoadShedConfig(config).ok());
  LoadShedGovernor governor(config);
  EXPECT_EQ(governor.Update(0.05, 400.0).level, LoadShedLevel::kShed);
  // Rate subsiding de-escalates exactly as occupancy draining does; 30% of
  // the full rate is still inside the shrink hysteresis band.
  EXPECT_EQ(governor.Update(0.05, 30.0).level, LoadShedLevel::kShrink);
  EXPECT_EQ(governor.Update(0.05, 10.0).level, LoadShedLevel::kNormal);
}

TEST(LoadShedGovernorTest, RateSignalDisabledByDefault) {
  // rate_full_per_sec = 0 disables the signal: any rate is ignored and the
  // governor reacts to occupancy alone, preserving pre-signal behavior.
  LoadShedGovernor governor(TestShedConfig());
  EXPECT_EQ(governor.Update(0.1, 1e9).level, LoadShedLevel::kNormal);
  EXPECT_EQ(governor.Update(0.6, 0.0).level, LoadShedLevel::kShrink);
}

TEST(LoadShedGovernorTest, ValidatesRateConfig) {
  LoadShedConfig bad = TestShedConfig();
  bad.rate_full_per_sec = -1.0;
  EXPECT_FALSE(ValidateLoadShedConfig(bad).ok());
  bad = TestShedConfig();
  bad.rate_tau_seconds = 0.0;
  EXPECT_FALSE(ValidateLoadShedConfig(bad).ok());
}

TEST(LoadShedGovernorTest, ValidatesConfig) {
  LoadShedConfig bad = TestShedConfig();
  bad.shrink_exit = 0.9;  // exit above enter
  EXPECT_FALSE(ValidateLoadShedConfig(bad).ok());

  bad = TestShedConfig();
  bad.shed_enter = 0.5;  // ladder not monotone (hibernate_enter = 0.75)
  EXPECT_FALSE(ValidateLoadShedConfig(bad).ok());

  bad = TestShedConfig();
  bad.shrink_budget_scale = 0.0;
  EXPECT_FALSE(ValidateLoadShedConfig(bad).ok());

  bad = TestShedConfig();
  bad.hibernate_enter = 1.5;
  EXPECT_FALSE(ValidateLoadShedConfig(bad).ok());

  EXPECT_TRUE(ValidateLoadShedConfig(TestShedConfig()).ok());

  // The server rejects a broken governor config up front.
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.objects_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  std::vector<SiteSpec> specs;
  specs.push_back(
      {1, MakeWorldModel(layout.value(), std::make_unique<ConeSensorModel>())});
  ServeConfig config;
  config.load_shed.enabled = true;
  config.load_shed.shrink_exit = 0.9;
  EXPECT_FALSE(StreamingServer::Create(std::move(specs), config).ok());
}

/// Records for one small site, repeated `repeats` times with shifted times
/// so a large burst of admissible traffic exists.
std::vector<ServeRecord> BurstRecords(SiteId site, uint64_t seed) {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 4;
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  EXPECT_TRUE(layout.ok());
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, seed);
  const SimulatedTrace trace = gen.Generate();
  std::vector<ServeRecord> records;
  for (const SimEpoch& epoch : trace.epochs) {
    const SyncedEpoch& obs = epoch.observations;
    if (obs.has_location) {
      ReaderLocationReport report;
      report.time = obs.time;
      report.location = obs.reported_location;
      records.push_back(ServeRecord::Location(site, report));
    }
    for (TagId tag : obs.tags) {
      records.push_back(ServeRecord::Reading(site, {obs.time, tag}));
    }
  }
  return records;
}

TEST(LoadShedGovernorTest, ServerShedsUnderQueuePressureAndRecovers) {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 4;
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());

  ServeConfig config;
  config.num_shards = 1;
  config.num_threads = 1;
  config.queue_capacity = 32;
  config.block_when_full = false;  // Producers must not stall in this test.
  config.engine.factored.num_reader_particles = 20;
  config.engine.factored.num_object_particles = 60;
  config.engine.factored.seed = 17;
  config.load_shed = TestShedConfig();

  std::vector<SiteSpec> specs;
  specs.push_back(
      {1, MakeWorldModel(layout.value(), std::make_unique<ConeSensorModel>())});
  auto server = StreamingServer::Create(std::move(specs), config);
  ASSERT_TRUE(server.ok());

  // Fill the queue to the brim without pumping: the next sweep observes
  // occupancy 1.0 and must run the whole batch through the kShed rung.
  const std::vector<ServeRecord> records = BurstRecords(1, 77);
  ASSERT_GT(records.size(), config.queue_capacity);
  size_t accepted = 0;
  for (const ServeRecord& record : records) {
    if (server.value()->Ingest(record)) ++accepted;
  }
  EXPECT_EQ(accepted, config.queue_capacity);
  server.value()->Pump();

  ServerStatsSnapshot stats = server.value()->Stats();
  EXPECT_GT(stats.shards[0].shed_escalations, 0u);
  EXPECT_EQ(stats.TotalRecordsShed(), accepted);
  EXPECT_EQ(stats.TotalRecordsProcessed(), 0u);

  // Pressure gone: the governor walks back to normal and subsequent
  // traffic is processed, not shed.
  server.value()->Pump();  // Empty queue -> occupancy 0 -> deescalate.
  for (size_t i = 0; i < 16 && i < records.size(); ++i) {
    ASSERT_TRUE(server.value()->Ingest(records[i]));
  }
  server.value()->Pump();
  stats = server.value()->Stats();
  EXPECT_EQ(stats.shards[0].shed_level, 0);
  EXPECT_GT(stats.TotalRecordsProcessed(), 0u);
  EXPECT_EQ(stats.TotalRecordsShed(), accepted);  // No new sheds.

  // The whole story is visible in the JSON export.
  const std::string json = server.value()->StatsJson();
  EXPECT_NE(json.find("\"shed\""), std::string::npos);
  EXPECT_NE(json.find("\"records_shed\""), std::string::npos);
  EXPECT_NE(json.find("\"total_records_shed\""), std::string::npos);
  EXPECT_NE(json.find("\"hibernated\""), std::string::npos);
}

TEST(LoadShedGovernorTest, DisabledGovernorNeverSheds) {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.objects_per_shelf = 4;
  auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());

  ServeConfig config;
  config.num_shards = 1;
  config.queue_capacity = 16;
  config.block_when_full = false;
  config.engine.factored.num_reader_particles = 20;
  config.engine.factored.num_object_particles = 60;
  config.engine.factored.seed = 18;

  std::vector<SiteSpec> specs;
  specs.push_back(
      {1, MakeWorldModel(layout.value(), std::make_unique<ConeSensorModel>())});
  auto server = StreamingServer::Create(std::move(specs), config);
  ASSERT_TRUE(server.ok());

  const std::vector<ServeRecord> records = BurstRecords(1, 78);
  size_t accepted = 0;
  for (const ServeRecord& record : records) {
    if (server.value()->Ingest(record)) ++accepted;
  }
  server.value()->Pump();
  const ServerStatsSnapshot stats = server.value()->Stats();
  EXPECT_EQ(stats.TotalRecordsShed(), 0u);
  EXPECT_EQ(stats.TotalRecordsProcessed(), accepted);
  EXPECT_EQ(stats.shards[0].shed_escalations, 0u);
}

}  // namespace
}  // namespace rfid
