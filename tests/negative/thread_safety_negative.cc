// Negative compile-time harness: this file MUST NOT compile under Clang
// with -Werror=thread-safety. It exists to prove the wall is actually on —
// if the annotations were silently disabled (macro gate broken, flag
// dropped from the build), the `thread_safety_negative` target would start
// compiling and the WILL_FAIL ctest registered in CMakeLists.txt would
// fail the suite.
//
// The target is EXCLUDE_FROM_ALL and Clang-only; it is built exclusively
// by that ctest invocation.

#include "util/thread_annotations.h"

namespace rfid {
namespace {

class Guarded {
 public:
  // Each method is one distinct discipline violation the analysis must
  // reject. A single violation would do; several make it obvious which
  // guarantee regressed if this file ever partially compiles.

  // guarded_by read without the lock.
  int ReadUnlocked() const { return value_; }

  // guarded_by write without the lock.
  void WriteUnlocked(int v) { value_ = v; }

  // REQUIRES not satisfied by the caller.
  void CallRequiresWithoutLock() { MutateLocked(); }

  // Lock acquired but never released on one path.
  void LeakLock(bool flag) {
    mu_.Lock();
    if (flag) return;  // escapes with mu_ held
    mu_.Unlock();
  }

 private:
  void MutateLocked() RFID_REQUIRES(mu_) { ++value_; }

  mutable Mutex mu_;
  int value_ RFID_GUARDED_BY(mu_) = 0;
};

// Anchor so the TU is not empty even if the class is optimized away.
Guarded g_instance;

}  // namespace
}  // namespace rfid
