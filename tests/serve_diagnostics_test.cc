// Serving-path observability: the slow-epoch flight recorder, the
// DumpDiagnostics post-mortem bundle (metrics, trace, flight records,
// dead-letter spill), the telemetry determinism invariant, and counter
// monotonicity across Stop()/Start().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/experiment.h"
#include "model/cone_sensor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/diagnostics.h"
#include "serve/server.h"
#include "sim/trace.h"

namespace rfid {
namespace {

struct SiteTraffic {
  WarehouseLayout layout;
  std::vector<ServeRecord> records;
};

SiteTraffic MakeSiteTraffic(SiteId site, uint64_t seed) {
  WarehouseConfig wc;
  wc.num_shelves = 2;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 4;
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  EXPECT_TRUE(layout.ok());
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, seed);
  const SimulatedTrace trace = gen.Generate();

  SiteTraffic traffic;
  traffic.layout = layout.value();
  for (const SimEpoch& epoch : trace.epochs) {
    const SyncedEpoch& obs = epoch.observations;
    if (obs.has_location) {
      ReaderLocationReport report;
      report.time = obs.time;
      report.location = obs.reported_location;
      report.has_heading = obs.has_heading;
      report.heading = obs.reported_heading;
      traffic.records.push_back(ServeRecord::Location(site, report));
    }
    for (TagId tag : obs.tags) {
      traffic.records.push_back(ServeRecord::Reading(site, {obs.time, tag}));
    }
  }
  return traffic;
}

ServeConfig SmallServeConfig() {
  ServeConfig config;
  config.num_shards = 1;
  config.num_threads = 1;
  config.epoch_seconds = 1.0;
  config.max_lateness_seconds = 2.0;
  config.engine.factored.num_reader_particles = 30;
  config.engine.factored.num_object_particles = 100;
  config.engine.factored.seed = 41;
  config.engine.emitter.delay_seconds = 5.0;
  return config;
}

WorldModel SiteModel(const SiteTraffic& traffic) {
  return MakeWorldModel(traffic.layout, std::make_unique<ConeSensorModel>());
}

struct EventLog {
  std::mutex mu;
  std::map<SiteId, std::vector<LocationEvent>> events;

  SubscriptionBus::EventCallback Callback() {
    return [this](SiteId site, const LocationEvent& event) {
      std::lock_guard<std::mutex> lock(mu);
      events[site].push_back(event);
    };
  }
};

std::string TempDir(const char* tag) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

TEST(FlightRecorderServeTest, ArtificiallySlowEpochTripsTheRecorder) {
  const SiteTraffic traffic = MakeSiteTraffic(1, 601);
  std::vector<SiteSpec> specs;
  specs.push_back({1, SiteModel(traffic)});
  ServeConfig config = SmallServeConfig();
  // Tight thresholds so the sleeping subscriber below is unambiguously
  // slow relative to the EWMA seeded by the fast epochs.
  config.flight.slow_multiple = 3.0;
  config.flight.min_slow_seconds = 1e-4;
  auto server = StreamingServer::Create(std::move(specs), config);
  ASSERT_TRUE(server.ok());

  // The subscriber stalls dispatch once armed; dispatch is inside the
  // epoch's measured total, so armed epochs read as slow.
  std::atomic<bool> stall{false};
  server.value()->bus().SubscribeEvents(
      [&stall](SiteId, const LocationEvent&) {
        if (stall.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          stall.store(false, std::memory_order_relaxed);  // One slow epoch.
        }
      });

  // Feed the first half fast to seed the EWMA with normal epoch times.
  const size_t half = traffic.records.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(server.value()->Ingest(traffic.records[i]));
  }
  server.value()->Pump();
  stall.store(true, std::memory_order_relaxed);
  for (size_t i = half; i < traffic.records.size(); ++i) {
    ASSERT_TRUE(server.value()->Ingest(traffic.records[i]));
  }
  server.value()->Pump();
  server.value()->Flush();

  const SitePipeline* pipeline = server.value()->FindSite(1);
  ASSERT_NE(pipeline, nullptr);
  EXPECT_GE(pipeline->flight().epochs_recorded(), 2u);
  EXPECT_GE(pipeline->flight().captures(), 1u);
  bool saw_slow = false;
  for (const auto& diag : pipeline->flight().diagnostics()) {
    if (diag.trigger == "slow_epoch") saw_slow = true;
    EXPECT_FALSE(diag.recent.empty());
  }
  EXPECT_TRUE(saw_slow);
  const ServerStatsSnapshot stats = server.value()->Stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  ASSERT_EQ(stats.shards[0].sites.size(), 1u);
  EXPECT_GE(stats.shards[0].sites[0].slow_epochs, 1u);
  EXPECT_NE(server.value()->StatsJson().find("\"slow_epochs\""),
            std::string::npos);
}

TEST(DumpDiagnosticsTest, BundleContainsMetricsTraceFlightAndSpill) {
  const SiteTraffic traffic = MakeSiteTraffic(1, 602);
  std::vector<SiteSpec> specs;
  specs.push_back({1, SiteModel(traffic)});
  auto server = StreamingServer::Create(std::move(specs), SmallServeConfig());
  ASSERT_TRUE(server.ok());

  obs::Tracer::Default().Clear();
  obs::Tracer::Default().SetEnabled(true);

  for (const ServeRecord& record : traffic.records) {
    ASSERT_TRUE(server.value()->Ingest(record));
  }
  // Two malformed records land in the dead-letter ring (and capture
  // "quarantine" flight diagnostics).
  ASSERT_TRUE(server.value()->Ingest(
      ServeRecord::Reading(1, {std::nan(""), 7})));
  ReaderLocationReport bad_report;
  bad_report.time = std::numeric_limits<double>::infinity();
  ASSERT_TRUE(server.value()->Ingest(ServeRecord::Location(1, bad_report)));
  server.value()->Pump();
  server.value()->Flush();

  const std::string dir = TempDir("diag_bundle");
  ASSERT_TRUE(server.value()->DumpDiagnostics(dir).ok());
  obs::Tracer::Default().SetEnabled(false);

  // Prometheus scrape covers the pipeline stages, queue and pump.
  const std::string prom = ReadFile(dir + "/metrics.prom");
  EXPECT_NE(prom.find("# TYPE rfid_epoch_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("rfid_stage_seconds_bucket{stage=\"weight\""),
            std::string::npos);
  EXPECT_NE(prom.find("rfid_stage_seconds_count{stage=\"dispatch\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("rfid_ingest_enqueue_seconds"), std::string::npos);
  EXPECT_NE(prom.find("rfid_pump_sweep_seconds"), std::string::npos);
  EXPECT_NE(prom.find("rfid_records_processed_total"), std::string::npos);
  EXPECT_NE(prom.find("rfid_records_quarantined_total 2"), std::string::npos);

  const std::string metrics_json = ReadFile(dir + "/metrics.json");
  EXPECT_NE(metrics_json.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics_json.find("rfid_epoch_seconds"), std::string::npos);

  // The trace dump is Chrome/Perfetto trace-event JSON with our spans.
  const std::string trace = ReadFile(dir + "/trace.json");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"epoch\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"pump_sweep\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  const std::string stats = ReadFile(dir + "/stats.json");
  EXPECT_NE(stats.find("\"shards\""), std::string::npos);
  EXPECT_NE(stats.find("\"rejected_closed\""), std::string::npos);

  const std::string flight = ReadFile(dir + "/flight.json");
  EXPECT_NE(flight.find("\"sites\""), std::string::npos);
  EXPECT_NE(flight.find("\"trigger\":\"quarantine\""), std::string::npos);
  EXPECT_NE(flight.find("\"ewma_seconds\""), std::string::npos);

  // The dead-letter spill round-trips back to the in-memory ring.
  const SitePipeline* pipeline = server.value()->FindSite(1);
  ASSERT_NE(pipeline, nullptr);
  ASSERT_EQ(pipeline->DeadLetters().size(), 2u);
  SiteId spilled_site = 0;
  std::vector<SpilledDeadLetter> spilled;
  ASSERT_TRUE(ReadDeadLetterSpill(dir + "/dead_letter_site_1.bin",
                                  &spilled_site, &spilled)
                  .ok());
  EXPECT_EQ(spilled_site, 1u);
  ASSERT_EQ(spilled.size(), pipeline->DeadLetters().size());
  for (size_t i = 0; i < spilled.size(); ++i) {
    const DeadLetterEntry& mem = pipeline->DeadLetters()[i];
    EXPECT_EQ(spilled[i].sequence, mem.sequence);
    EXPECT_EQ(spilled[i].reason, mem.reason);
    EXPECT_EQ(spilled[i].record.site, mem.record.site);
    EXPECT_EQ(static_cast<int>(spilled[i].record.kind),
              static_cast<int>(mem.record.kind));
  }

  std::filesystem::remove_all(dir);
}

TEST(TelemetryDeterminismTest, EventStreamsIdenticalWithTelemetryOnAndOff) {
  const SiteTraffic site1 = MakeSiteTraffic(1, 603);
  const SiteTraffic site2 = MakeSiteTraffic(2, 604);

  const auto run = [&](bool telemetry) {
    obs::SetTelemetryEnabled(telemetry);
    obs::Tracer::Default().SetEnabled(telemetry);
    std::vector<SiteSpec> specs;
    specs.push_back({1, SiteModel(site1)});
    specs.push_back({2, SiteModel(site2)});
    ServeConfig config = SmallServeConfig();
    config.num_shards = 2;
    auto server = StreamingServer::Create(std::move(specs), config);
    EXPECT_TRUE(server.ok());
    EventLog log;
    server.value()->bus().SubscribeEvents(log.Callback());
    for (const auto* traffic : {&site1, &site2}) {
      for (const ServeRecord& record : traffic->records) {
        EXPECT_TRUE(server.value()->Ingest(record));
      }
    }
    server.value()->Pump();
    server.value()->Flush();
    obs::Tracer::Default().SetEnabled(false);
    obs::SetTelemetryEnabled(true);
    return std::move(log.events);
  };

  const auto with_telemetry = run(true);
  const auto without_telemetry = run(false);

  // The observability layer only reads clocks and stores samples; it must
  // never branch inference. Bit-identical events prove it.
  ASSERT_EQ(with_telemetry.size(), without_telemetry.size());
  for (const auto& [site, events_a] : with_telemetry) {
    const auto it = without_telemetry.find(site);
    ASSERT_NE(it, without_telemetry.end()) << "site " << site;
    ASSERT_EQ(events_a.size(), it->second.size()) << "site " << site;
    for (size_t i = 0; i < events_a.size(); ++i) {
      EXPECT_EQ(events_a[i].time, it->second[i].time);
      EXPECT_EQ(events_a[i].tag, it->second[i].tag);
      EXPECT_EQ(events_a[i].location, it->second[i].location);
    }
  }
}

TEST(CounterMonotonicityTest, DropsAndPushesSurviveStopStartCycles) {
  const SiteTraffic traffic = MakeSiteTraffic(1, 605);
  std::vector<SiteSpec> specs;
  specs.push_back({1, SiteModel(traffic)});
  auto server = StreamingServer::Create(std::move(specs), SmallServeConfig());
  ASSERT_TRUE(server.ok());

  const size_t half = traffic.records.size() / 2;
  server.value()->Start();
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(server.value()->Ingest(traffic.records[i]));
  }
  server.value()->Stop();

  // The queues are closed now: these records are rejected, and the drop
  // must be *counted* (the closed-queue drop class used to be invisible).
  EXPECT_FALSE(server.value()->Ingest(traffic.records[half]));
  EXPECT_FALSE(server.value()->Ingest(traffic.records[half]));
  const ServerStatsSnapshot after_stop = server.value()->Stats();
  ASSERT_EQ(after_stop.shards.size(), 1u);
  EXPECT_EQ(after_stop.shards[0].queue.rejected_closed, 2u);
  const uint64_t pushed_after_stop = after_stop.shards[0].queue.pushed;
  EXPECT_EQ(pushed_after_stop, half);

  // Restart and feed the rest: lifetime counters keep climbing, nothing
  // resets, and the closed-drop count is preserved.
  server.value()->Start();
  for (size_t i = half; i < traffic.records.size(); ++i) {
    ASSERT_TRUE(server.value()->Ingest(traffic.records[i]));
  }
  server.value()->Stop();
  server.value()->Flush();

  const ServerStatsSnapshot final_stats = server.value()->Stats();
  EXPECT_EQ(final_stats.shards[0].queue.pushed, traffic.records.size());
  EXPECT_EQ(final_stats.shards[0].queue.rejected_closed, 2u);
  EXPECT_EQ(final_stats.shards[0].queue.popped, traffic.records.size());
  EXPECT_EQ(final_stats.TotalRecordsProcessed(), traffic.records.size());

  // The registry's counter view agrees with the stats surface.
  const std::string prom = server.value()->MetricsPrometheus();
  EXPECT_NE(
      prom.find(
          "rfid_ingest_dropped_total{shard=\"0\",reason=\"closed\"} 2"),
      std::string::npos);
}

}  // namespace
}  // namespace rfid
