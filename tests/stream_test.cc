// Tests for the stream layer: synchronizer, event emitter, and the two CQL
// queries of §II-B.
#include <gtest/gtest.h>

#include "stream/emitter.h"
#include "stream/query.h"
#include "stream/synchronizer.h"

namespace rfid {
namespace {

// ---------------------------------------------------------- Synchronizer ---

TEST(SynchronizerTest, EmptyStreamsYieldNothing) {
  StreamSynchronizer sync(1.0);
  const auto epochs = sync.Synchronize({}, {});
  ASSERT_TRUE(epochs.ok());
  EXPECT_TRUE(epochs.value().empty());
}

TEST(SynchronizerTest, GroupsReadingsByEpoch) {
  StreamSynchronizer sync(1.0);
  const std::vector<TagReading> readings = {
      {0.1, 5}, {0.7, 6}, {1.2, 7}, {2.9, 8}};
  const auto epochs = sync.Synchronize(readings, {});
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs.value().size(), 3u);
  EXPECT_EQ(epochs.value()[0].tags, (std::vector<TagId>{5, 6}));
  EXPECT_EQ(epochs.value()[1].tags, (std::vector<TagId>{7}));
  EXPECT_EQ(epochs.value()[2].tags, (std::vector<TagId>{8}));
}

TEST(SynchronizerTest, DeduplicatesTagsWithinEpoch) {
  StreamSynchronizer sync(1.0);
  const std::vector<TagReading> readings = {{0.1, 5}, {0.5, 5}, {0.9, 5}};
  const auto epochs = sync.Synchronize(readings, {});
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs.value().size(), 1u);
  EXPECT_EQ(epochs.value()[0].tags, (std::vector<TagId>{5}));
}

TEST(SynchronizerTest, AveragesLocationReports) {
  StreamSynchronizer sync(1.0);
  const std::vector<ReaderLocationReport> locs = {{0.2, {1, 2, 0}},
                                                  {0.8, {3, 4, 0}}};
  const auto epochs = sync.Synchronize({}, locs);
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs.value().size(), 1u);
  EXPECT_TRUE(epochs.value()[0].has_location);
  EXPECT_EQ(epochs.value()[0].reported_location, Vec3(2, 3, 0));
}

TEST(SynchronizerTest, EmitsEmptyEpochsBetweenRecords) {
  StreamSynchronizer sync(1.0);
  const std::vector<TagReading> readings = {{0.5, 1}, {3.5, 2}};
  const auto epochs = sync.Synchronize(readings, {});
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs.value().size(), 4u);
  EXPECT_TRUE(epochs.value()[1].tags.empty());
  EXPECT_FALSE(epochs.value()[1].has_location);
}

TEST(SynchronizerTest, SlightlyOutOfSyncStreamsLandInSameEpoch) {
  // The paper's motivation for coarse epochs: streams slightly out of sync.
  StreamSynchronizer sync(1.0);
  const std::vector<TagReading> readings = {{1.05, 9}};
  const std::vector<ReaderLocationReport> locs = {{1.95, {5, 5, 0}}};
  const auto epochs = sync.Synchronize(readings, locs);
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs.value().size(), 1u);
  EXPECT_EQ(epochs.value()[0].tags.size(), 1u);
  EXPECT_TRUE(epochs.value()[0].has_location);
}

TEST(SynchronizerTest, RejectsUnorderedStreams) {
  StreamSynchronizer sync(1.0);
  EXPECT_FALSE(sync.Synchronize({{2.0, 1}, {1.0, 2}}, {}).ok());
  EXPECT_FALSE(
      sync.Synchronize({}, {{2.0, {0, 0, 0}}, {1.0, {0, 0, 0}}}).ok());
}

TEST(SynchronizerTest, CustomEpochLength) {
  StreamSynchronizer sync(2.0);
  const std::vector<TagReading> readings = {{0.5, 1}, {1.5, 2}, {2.5, 3}};
  const auto epochs = sync.Synchronize(readings, {});
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs.value().size(), 2u);
  EXPECT_EQ(epochs.value()[0].tags.size(), 2u);
}

TEST(SynchronizerTest, OnlinePollReturnsClosedEpochs) {
  StreamSynchronizer sync(1.0);
  sync.Push(TagReading{0.3, 1});
  sync.Push(ReaderLocationReport{0.5, {1, 1, 0}});
  sync.Push(TagReading{1.2, 2});
  // Epoch 0 closes once time passes 1.0.
  const auto closed = sync.Poll(1.5);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].step, 0);
  EXPECT_EQ(closed[0].tags, (std::vector<TagId>{1}));
  EXPECT_TRUE(closed[0].has_location);
  // Finish flushes the rest.
  const auto rest = sync.Finish();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].tags, (std::vector<TagId>{2}));
}

TEST(SynchronizerTest, PollTwiceDoesNotDuplicate) {
  StreamSynchronizer sync(1.0);
  sync.Push(TagReading{0.3, 1});
  EXPECT_EQ(sync.Poll(2.0).size(), 1u);
  EXPECT_TRUE(sync.Poll(3.0).empty());
}

// --------------------------------------------------------------- Emitter ---

SyncedEpoch EmitterEpoch(int64_t step, std::vector<TagId> tags) {
  SyncedEpoch e;
  e.step = step;
  e.time = static_cast<double>(step);
  e.tags = std::move(tags);
  return e;
}

EventEmitter::EstimateFn FixedEstimate(const Vec3& at) {
  return [at](TagId) -> std::optional<LocationEstimate> {
    LocationEstimate est;
    est.mean = at;
    est.variance = {0.01, 0.02, 0.0};
    est.support = 100;
    return est;
  };
}

TEST(EmitterTest, AfterDelayEmitsOncePerScope) {
  EmitterConfig config;
  config.policy = EmitPolicy::kAfterDelay;
  config.delay_seconds = 5.0;
  EventEmitter emitter(config);
  const auto estimate = FixedEstimate({1, 2, 0});
  size_t total = 0;
  for (int t = 0; t < 20; ++t) {
    const auto events =
        emitter.OnEpoch(EmitterEpoch(t, {1000}), estimate);
    total += events.size();
    if (t < 5) {
      EXPECT_TRUE(events.empty()) << "premature emit at " << t;
    }
  }
  EXPECT_EQ(total, 1u);
}

TEST(EmitterTest, NewScopePeriodEmitsAgain) {
  EmitterConfig config;
  config.delay_seconds = 2.0;
  config.scope_timeout_epochs = 5;
  EventEmitter emitter(config);
  const auto estimate = FixedEstimate({1, 2, 0});
  size_t total = 0;
  for (int t = 0; t < 10; ++t) {
    total += emitter.OnEpoch(EmitterEpoch(t, {1000}), estimate).size();
  }
  for (int t = 10; t < 30; ++t) {  // Long gap: scope ends.
    total += emitter.OnEpoch(EmitterEpoch(t, {}), estimate).size();
  }
  for (int t = 30; t < 40; ++t) {  // Reappears: new scope, new event.
    total += emitter.OnEpoch(EmitterEpoch(t, {1000}), estimate).size();
  }
  EXPECT_EQ(total, 2u);
}

TEST(EmitterTest, EventCarriesStats) {
  EmitterConfig config;
  config.delay_seconds = 0.0;
  EventEmitter emitter(config);
  const auto events =
      emitter.OnEpoch(EmitterEpoch(0, {7}), FixedEstimate({3, 4, 0}));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tag, 7u);
  EXPECT_EQ(events[0].location, Vec3(3, 4, 0));
  ASSERT_TRUE(events[0].stats.has_value());
  EXPECT_NEAR(events[0].stats->rmse_radius, std::sqrt(0.03), 1e-9);
  EXPECT_EQ(events[0].stats->support, 100);
}

TEST(EmitterTest, StatsCanBeDisabled) {
  EmitterConfig config;
  config.delay_seconds = 0.0;
  config.attach_stats = false;
  EventEmitter emitter(config);
  const auto events =
      emitter.OnEpoch(EmitterEpoch(0, {7}), FixedEstimate({3, 4, 0}));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].stats.has_value());
}

TEST(EmitterTest, ScanCompleteEmitsEverySeenTag) {
  EmitterConfig config;
  config.policy = EmitPolicy::kOnScanComplete;
  EventEmitter emitter(config);
  const auto estimate = FixedEstimate({1, 1, 0});
  EXPECT_TRUE(emitter.OnEpoch(EmitterEpoch(0, {1, 2}), estimate).empty());
  EXPECT_TRUE(emitter.OnEpoch(EmitterEpoch(1, {3}), estimate).empty());
  const auto events = emitter.NotifyScanComplete(10.0, estimate);
  EXPECT_EQ(events.size(), 3u);
}

TEST(EmitterTest, EveryEpochPolicyEmitsContinuously) {
  EmitterConfig config;
  config.policy = EmitPolicy::kEveryEpoch;
  EventEmitter emitter(config);
  const auto estimate = FixedEstimate({1, 1, 0});
  emitter.OnEpoch(EmitterEpoch(0, {1}), estimate);
  const auto events = emitter.OnEpoch(EmitterEpoch(1, {}), estimate);
  EXPECT_EQ(events.size(), 1u);  // Tag 1 still tracked.
}

std::vector<TagId> EventTags(const std::vector<LocationEvent>& events) {
  std::vector<TagId> tags;
  for (const auto& e : events) tags.push_back(e.tag);
  return tags;
}

// Event order is part of the stream's bit-identity contract: the same set
// of tracked tags must produce the same event sequence no matter what order
// the scope map saw them in (hash order must never leak into the stream).
TEST(EmitterTest, EveryEpochOrderIndependentOfInsertion) {
  EmitterConfig config;
  config.policy = EmitPolicy::kEveryEpoch;
  const auto estimate = FixedEstimate({1, 1, 0});
  const std::vector<TagId> forward{11, 503, 7, 90210, 42, 1, 65536, 8};
  std::vector<TagId> reversed(forward.rbegin(), forward.rend());

  EventEmitter a(config);
  EventEmitter b(config);
  for (TagId tag : forward) a.OnEpoch(EmitterEpoch(0, {tag}), estimate);
  for (TagId tag : reversed) b.OnEpoch(EmitterEpoch(0, {tag}), estimate);

  const auto ta = EventTags(a.OnEpoch(EmitterEpoch(1, {}), estimate));
  const auto tb = EventTags(b.OnEpoch(EmitterEpoch(1, {}), estimate));
  EXPECT_EQ(ta, tb);
  EXPECT_TRUE(std::is_sorted(ta.begin(), ta.end()));
  EXPECT_EQ(ta.size(), forward.size());
}

TEST(EmitterTest, ScanCompleteOrderIndependentOfInsertion) {
  EmitterConfig config;
  config.policy = EmitPolicy::kOnScanComplete;
  const auto estimate = FixedEstimate({2, 2, 0});
  const std::vector<TagId> forward{9, 1000, 3, 77, 123456, 2};
  std::vector<TagId> reversed(forward.rbegin(), forward.rend());

  EventEmitter a(config);
  EventEmitter b(config);
  for (TagId tag : forward) a.OnEpoch(EmitterEpoch(0, {tag}), estimate);
  for (TagId tag : reversed) b.OnEpoch(EmitterEpoch(0, {tag}), estimate);

  const auto ta = EventTags(a.NotifyScanComplete(5.0, estimate));
  const auto tb = EventTags(b.NotifyScanComplete(5.0, estimate));
  EXPECT_EQ(ta, tb);
  EXPECT_TRUE(std::is_sorted(ta.begin(), ta.end()));
  EXPECT_EQ(ta.size(), forward.size());
}

// --------------------------------------------------- LocationUpdateQuery ---

LocationEvent Event(double time, TagId tag, const Vec3& loc) {
  LocationEvent e;
  e.time = time;
  e.tag = tag;
  e.location = loc;
  return e;
}

TEST(LocationUpdateQueryTest, FirstReportAlwaysEmits) {
  LocationUpdateQuery q;
  EXPECT_TRUE(q.Process(Event(0, 1, {1, 1, 0})).has_value());
}

TEST(LocationUpdateQueryTest, UnchangedLocationSuppressed) {
  LocationUpdateQuery q(0.05);
  EXPECT_TRUE(q.Process(Event(0, 1, {1, 1, 0})).has_value());
  EXPECT_FALSE(q.Process(Event(1, 1, {1, 1.01, 0})).has_value());
  EXPECT_TRUE(q.Process(Event(2, 1, {1, 2, 0})).has_value());
}

TEST(LocationUpdateQueryTest, PartitionsByTag) {
  LocationUpdateQuery q(0.05);
  EXPECT_TRUE(q.Process(Event(0, 1, {1, 1, 0})).has_value());
  EXPECT_TRUE(q.Process(Event(0, 2, {1, 1, 0})).has_value());
  EXPECT_EQ(q.num_partitions(), 2u);
  EXPECT_FALSE(q.Process(Event(1, 2, {1, 1, 0})).has_value());
}

// ---------------------------------------------------------- FireCodeQuery --

TEST(FireCodeQueryTest, CellOfUsesFloor) {
  FireCodeQuery q(5.0, 200.0, [](TagId) { return 1.0; });
  EXPECT_EQ(q.CellOf({0.5, 0.5, 0}).x, 0);
  EXPECT_EQ(q.CellOf({-0.5, 1.5, 0}).x, -1);
  EXPECT_EQ(q.CellOf({-0.5, 1.5, 0}).y, 1);
}

TEST(FireCodeQueryTest, AlertsWhenWeightExceedsLimit) {
  FireCodeQuery q(5.0, 200.0, [](TagId) { return 150.0; });
  EXPECT_TRUE(q.Process(Event(0.0, 1, {0.5, 0.5, 0})).empty());
  const auto alerts = q.Process(Event(1.0, 2, {0.7, 0.3, 0}));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].area.x, 0);
  EXPECT_EQ(alerts[0].area.y, 0);
  EXPECT_DOUBLE_EQ(alerts[0].total_weight, 300.0);
}

TEST(FireCodeQueryTest, DifferentCellsDoNotCombine) {
  FireCodeQuery q(5.0, 200.0, [](TagId) { return 150.0; });
  EXPECT_TRUE(q.Process(Event(0.0, 1, {0.5, 0.5, 0})).empty());
  EXPECT_TRUE(q.Process(Event(1.0, 2, {5.5, 0.5, 0})).empty());
}

TEST(FireCodeQueryTest, WindowEvictionClearsOldWeight) {
  FireCodeQuery q(5.0, 200.0, [](TagId) { return 150.0; });
  q.Process(Event(0.0, 1, {0.5, 0.5, 0}));
  // 6 seconds later the first event fell out of the 5 s window.
  EXPECT_TRUE(q.Process(Event(6.0, 2, {0.5, 0.5, 0})).empty());
  EXPECT_DOUBLE_EQ(q.AreaWeight({0, 0}), 150.0);
}

TEST(FireCodeQueryTest, AlertOncePerExcursion) {
  FireCodeQuery q(10.0, 200.0, [](TagId) { return 150.0; });
  q.Process(Event(0.0, 1, {0.5, 0.5, 0}));
  EXPECT_EQ(q.Process(Event(1.0, 2, {0.5, 0.5, 0})).size(), 1u);
  // Still above threshold: no duplicate alert.
  EXPECT_TRUE(q.Process(Event(2.0, 3, {0.5, 0.5, 0})).empty());
}

TEST(FireCodeQueryTest, ReAlertsAfterDroppingBelowLimit) {
  FireCodeQuery q(5.0, 200.0, [](TagId) { return 150.0; });
  q.Process(Event(0.0, 1, {0.5, 0.5, 0}));
  EXPECT_EQ(q.Process(Event(1.0, 2, {0.5, 0.5, 0})).size(), 1u);
  // Window slides past both events; weight drops to zero, then builds again.
  q.Process(Event(10.0, 3, {0.5, 0.5, 0}));
  EXPECT_EQ(q.Process(Event(11.0, 4, {0.5, 0.5, 0})).size(), 1u);
}

TEST(LocationUpdateQueryTest, TtlEvictsDepartedTags) {
  LocationUpdateQuery q(/*min_change_feet=*/0.05, /*ttl_seconds=*/10.0);
  EXPECT_TRUE(q.Process(Event(0, 1, {1, 1, 0})).has_value());
  EXPECT_TRUE(q.Process(Event(0, 2, {5, 5, 0})).has_value());
  // Tag 2 keeps reporting (suppressed, but present); tag 1 goes silent.
  EXPECT_FALSE(q.Process(Event(5, 2, {5, 5, 0})).has_value());
  EXPECT_FALSE(q.Process(Event(12, 2, {5, 5, 0})).has_value());
  EXPECT_EQ(q.num_partitions(), 1u);  // Tag 1 evicted at t=12.
  EXPECT_EQ(q.Stats().evicted, 1u);
  // Regression: the first post-eviction report always emits, even from the
  // exact same location as before the eviction.
  EXPECT_TRUE(q.Process(Event(13, 1, {1, 1, 0})).has_value());
}

TEST(LocationUpdateQueryTest, SuppressedReportsRefreshTtl) {
  LocationUpdateQuery q(0.05, /*ttl_seconds=*/10.0);
  EXPECT_TRUE(q.Process(Event(0, 1, {1, 1, 0})).has_value());
  // A stationary tag reporting every 4 s must never be evicted.
  for (int t = 4; t <= 40; t += 4) {
    EXPECT_FALSE(q.Process(Event(t, 1, {1, 1, 0})).has_value()) << t;
  }
  EXPECT_EQ(q.num_partitions(), 1u);
  EXPECT_EQ(q.Stats().evicted, 0u);
}

TEST(LocationUpdateQueryTest, ZeroTtlNeverEvicts) {
  LocationUpdateQuery q(0.05);  // Default: eviction disabled.
  EXPECT_TRUE(q.Process(Event(0, 1, {1, 1, 0})).has_value());
  EXPECT_FALSE(q.Process(Event(1e9, 1, {1, 1, 0})).has_value());
  EXPECT_EQ(q.num_partitions(), 1u);
}

TEST(FireCodeQueryTest, WeightFunctionPerTag) {
  FireCodeQuery q(5.0, 200.0,
                  [](TagId tag) { return tag == 1 ? 500.0 : 1.0; });
  const auto alerts = q.Process(Event(0.0, 1, {0.5, 0.5, 0}));
  ASSERT_EQ(alerts.size(), 1u);  // Single heavy object trips the code.
  EXPECT_TRUE(q.Process(Event(1.0, 2, {8.5, 0.5, 0})).empty());
}

TEST(FireCodeQueryTest, EvictionErasesAlertStateWithTheCell) {
  // Regression for the seed leak: evicting a cell set `alerted_[cell] =
  // false` — inserting an entry per evicted cell that nothing ever erased.
  FireCodeQuery q(5.0, 100.0, [](TagId) { return 150.0; });
  for (int i = 0; i < 1000; ++i) {
    // Each event lands in a fresh cell, alerts, and expires 10 s later.
    q.Process(Event(i * 10.0, 1, {i * 3.0 + 0.5, 0.5, 0}));
  }
  // Only the newest event's cell is live; every alerted cell before it is
  // fully erased (weight, window, and armed flag alike).
  EXPECT_EQ(q.num_cells(), 1u);
  EXPECT_EQ(q.window_entries(), 1u);
  EXPECT_EQ(q.Stats().evicted, 999u);
}

TEST(FireCodeQueryTest, EvictedWeightResidueIsClampedToZero) {
  // 1e16 + 1.0 is absorbed in double precision, so evicting both entries
  // naively leaves total = -1.0: negative area weight and (in the seed) a
  // cell that survives the `<= 1e-12` erase check's intent.
  FireCodeQuery q(5.0, 1e17, [](TagId tag) { return tag == 1 ? 1e16 : 1.0; });
  q.Process(Event(0.0, 1, {0.5, 0.5, 0}));
  q.Process(Event(0.5, 2, {0.5, 0.5, 0}));
  q.Process(Event(6.0, 3, {50.5, 0.5, 0}));  // Evicts both entries.
  EXPECT_GE(q.AreaWeight({0, 0}), 0.0);
  EXPECT_EQ(q.num_cells(), 1u);  // Only the t=6 cell remains.
}

TEST(FireCodeQueryTest, HysteresisArmDisarmBoundaries) {
  FireCodeConfig config;
  config.window_seconds = 10.0;
  config.weight_limit = 200.0;
  config.disarm_limit = 100.0;
  FireCodeQuery q(config, [](TagId) { return 60.0; });

  // 60, 120, 180: at or below the arm threshold — no alert (strictly
  // greater arms, exactly-equal does not... 180 < 200 anyway).
  EXPECT_TRUE(q.Process(Event(0.0, 1, {0.5, 0.5, 0})).empty());
  EXPECT_TRUE(q.Process(Event(1.0, 2, {0.5, 0.5, 0})).empty());
  EXPECT_TRUE(q.Process(Event(2.0, 3, {0.5, 0.5, 0})).empty());
  EXPECT_FALSE(q.IsArmed(q.CellOf({0.5, 0.5, 0})));
  // 240 > 200: arms and alerts once.
  EXPECT_EQ(q.Process(Event(3.0, 4, {0.5, 0.5, 0})).size(), 1u);
  EXPECT_TRUE(q.IsArmed(q.CellOf({0.5, 0.5, 0})));

  // Window slides: eviction drops the weight to 180, then the new report
  // brings it back over 200. 180 is above the disarm threshold (100), so
  // the cell stays armed and re-crossing 200 does NOT re-alert — this is
  // exactly the boundary flapping the hysteresis exists to suppress.
  EXPECT_TRUE(q.Process(Event(10.5, 5, {0.5, 0.5, 0})).empty());
  EXPECT_TRUE(q.Process(Event(11.5, 6, {0.5, 0.5, 0})).empty());
  EXPECT_DOUBLE_EQ(q.AreaWeight({0, 0}), 240.0);  // t=2, 3, 10.5, 11.5.
  EXPECT_TRUE(q.IsArmed(q.CellOf({0.5, 0.5, 0})));

  // Let everything but the t=11.5 event expire: 60 <= 100 disarms.
  EXPECT_TRUE(q.Process(Event(21.0, 7, {0.5, 0.5, 0})).empty());
  EXPECT_DOUBLE_EQ(q.AreaWeight({0, 0}), 120.0);  // t=11.5 and t=21.
  EXPECT_FALSE(q.IsArmed(q.CellOf({0.5, 0.5, 0})));

  // Re-arm: crossing 200 alerts again after a genuine disarm.
  EXPECT_TRUE(q.Process(Event(22.0, 8, {0.5, 0.5, 0})).empty());   // 120.
  EXPECT_TRUE(q.Process(Event(23.0, 9, {0.5, 0.5, 0})).empty());   // 180.
  EXPECT_EQ(q.Process(Event(23.5, 10, {0.5, 0.5, 0})).size(), 1u);  // 240.
}

TEST(FireCodeQueryTest, DisarmExactlyAtThresholdDisarms) {
  FireCodeConfig config;
  config.window_seconds = 5.0;
  config.weight_limit = 100.0;
  config.disarm_limit = 60.0;
  FireCodeQuery q(config, [](TagId) { return 60.0; });
  q.Process(Event(0.0, 1, {0.5, 0.5, 0}));
  EXPECT_EQ(q.Process(Event(1.0, 2, {0.5, 0.5, 0})).size(), 1u);  // 120.
  // t=6: the t=0 entry expires, weight drops to exactly 60 == disarm_limit;
  // "falls to or below" must disarm.
  q.Process(Event(6.0, 3, {50.5, 0.5, 0}));
  EXPECT_FALSE(q.IsArmed(q.CellOf({0.5, 0.5, 0})));
}

TEST(FireCodeQueryTest, DisarmLimitAboveArmIsClampedDown) {
  FireCodeConfig config;
  config.window_seconds = 5.0;
  config.weight_limit = 100.0;
  config.disarm_limit = 500.0;  // Nonsense; behaves like no hysteresis.
  FireCodeQuery q(config, [](TagId) { return 80.0; });
  q.Process(Event(0.0, 1, {0.5, 0.5, 0}));
  EXPECT_EQ(q.Process(Event(1.0, 2, {0.5, 0.5, 0})).size(), 1u);  // 160.
  q.Process(Event(7.0, 3, {0.5, 0.5, 0}));   // Both expired; 80 <= 100.
  EXPECT_FALSE(q.IsArmed(q.CellOf({0.5, 0.5, 0})));
  EXPECT_EQ(q.Process(Event(7.5, 4, {0.5, 0.5, 0})).size(), 1u);  // 160.
}

}  // namespace
}  // namespace rfid
