// Tests for core/: ErrorStats and the experiment helpers.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "model/cone_sensor.h"

namespace rfid {
namespace {

// -------------------------------------------------------------- ErrorStats -

TEST(ErrorStatsTest, EmptyIsZero) {
  ErrorStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.MeanXY(), 0.0);
  EXPECT_EQ(stats.count(), 0u);
}

TEST(ErrorStatsTest, SingleSampleAxes) {
  ErrorStats stats;
  stats.Add({3.0, 4.0, 1.0}, {0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(stats.MeanX(), 3.0);
  EXPECT_DOUBLE_EQ(stats.MeanY(), 4.0);
  EXPECT_DOUBLE_EQ(stats.MeanZ(), 1.0);
  EXPECT_DOUBLE_EQ(stats.MeanXY(), 5.0);
  EXPECT_NEAR(stats.MeanXYZ(), std::sqrt(26.0), 1e-12);
}

TEST(ErrorStatsTest, MeansAverageOverSamples) {
  ErrorStats stats;
  stats.Add({1.0, 0.0, 0.0}, {0.0, 0.0, 0.0});
  stats.Add({3.0, 0.0, 0.0}, {0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(stats.MeanX(), 2.0);
  EXPECT_EQ(stats.count(), 2u);
}

TEST(ErrorStatsTest, ErrorsAreAbsolute) {
  ErrorStats stats;
  stats.Add({-2.0, 1.0, 0.0}, {0.0, 0.0, 0.0});
  stats.Add({2.0, -1.0, 0.0}, {0.0, 0.0, 0.0});
  // Signed errors would cancel; absolute must not.
  EXPECT_DOUBLE_EQ(stats.MeanX(), 2.0);
  EXPECT_DOUBLE_EQ(stats.MeanY(), 1.0);
}

// ----------------------------------------------------------- MakeWorldModel

TEST(ExperimentTest, MakeWorldModelWiresLayout) {
  WarehouseConfig wc;
  wc.num_shelves = 2;
  wc.shelf_tags_per_shelf = 3;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  ExperimentModelOptions options;
  options.object_move_probability = 0.01;
  const WorldModel model = MakeWorldModel(
      layout.value(), std::make_unique<ConeSensorModel>(), options);
  EXPECT_EQ(model.shelf_tags().size(), 6u);
  EXPECT_EQ(model.object_model().params().move_probability, 0.01);
  EXPECT_EQ(model.object_model().shelves().size(), 2u);
  // Every shelf tag location lies on a shelf edge covered by the regions'
  // bounding box.
  for (const ShelfTag& s : model.shelf_tags()) {
    EXPECT_TRUE(model.object_model().shelves().BoundingBox().Contains(
        s.location));
  }
}

// ------------------------------------------------------------- Run helpers

TEST(ExperimentTest, RunEngineOnTraceCountsObjects) {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 6;
  wc.shelf_tags_per_shelf = 2;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, 12);
  const SimulatedTrace trace = gen.Generate();

  EngineConfig config;
  config.factored.num_reader_particles = 30;
  config.factored.num_object_particles = 100;
  config.factored.seed = 12;
  auto engine = RfidInferenceEngine::Create(
      MakeWorldModel(layout.value(), sensor.Clone()), config);
  ASSERT_TRUE(engine.ok());
  const TraceEvaluation eval = RunEngineOnTrace(engine.value().get(), trace);
  EXPECT_EQ(eval.objects_evaluated + eval.objects_missing, 6u);
  EXPECT_EQ(eval.objects_missing, 0u);  // 100% read rate: all seen.
  EXPECT_EQ(eval.engine_stats.epochs_processed, trace.epochs.size());
  EXPECT_GT(eval.engine_stats.readings_processed, 0u);
}

TEST(ExperimentTest, EvaluateEventsUsesEventTimeTruth) {
  // An object moves at t=100; an event before the move must be scored
  // against the old location, one after against the new.
  const std::vector<ObjectPlacement> objs = {{5, {0, 0, 0}}};
  const GroundTruth truth(objs, {{100.0, 5, {0, 0, 0}, {0, 10, 0}}});

  LocationEvent before;
  before.time = 50.0;
  before.tag = 5;
  before.location = {0, 0, 0};
  LocationEvent after;
  after.time = 150.0;
  after.tag = 5;
  after.location = {0, 10, 0};

  const ErrorStats stats = EvaluateEvents({before, after},
                                          truth);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.MeanXY(), 0.0);

  // Swapped locations: both wrong by 10 ft.
  LocationEvent wrong_before = before;
  wrong_before.location = {0, 10, 0};
  LocationEvent wrong_after = after;
  wrong_after.location = {0, 0, 0};
  const ErrorStats wrong = EvaluateEvents({wrong_before, wrong_after}, truth);
  EXPECT_DOUBLE_EQ(wrong.MeanXY(), 10.0);
}

TEST(ExperimentTest, EvaluateEventsSkipsUnknownTags) {
  const std::vector<ObjectPlacement> objs = {{5, {0, 0, 0}}};
  const GroundTruth truth(objs, {});
  LocationEvent e;
  e.tag = 999;  // Not in ground truth.
  e.location = {1, 1, 0};
  EXPECT_EQ(EvaluateEvents({e}, truth).count(), 0u);
}

TEST(ExperimentTest, BaselineRunnersProduceEvaluations) {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 4;
  wc.shelf_tags_per_shelf = 2;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, 13);
  const SimulatedTrace trace = gen.Generate();

  UniformBaseline uniform({}, &sensor, layout.value().MakeShelfRegions());
  const auto u = RunUniformOnTrace(&uniform, trace);
  EXPECT_EQ(u.objects_evaluated, 4u);
  EXPECT_GT(u.errors.MeanXY(), 0.0);

  SmurfBaseline smurf(SmurfConfig{}, &sensor,
                      layout.value().MakeShelfRegions());
  const auto s = RunSmurfOnTrace(&smurf, trace);
  EXPECT_GT(s.objects_evaluated, 0u);
}

}  // namespace
}  // namespace rfid
