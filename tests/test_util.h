// Shared helpers for filter / engine tests: tiny worlds and scripted epochs.
#pragma once

#include <memory>
#include <vector>

#include "model/cone_sensor.h"
#include "model/world_model.h"
#include "stream/readings.h"

namespace rfid {
namespace testing_util {

/// A single 10-ft shelf at x in [1.5, 2.5] with two shelf tags, scanned from
/// the aisle at x = 0. Sensor is the default cone (max range 4.5 ft).
inline WorldModel MakeLineWorld(double move_probability = 1e-4,
                                Vec3 sensing_mu = {},
                                Vec3 sensing_sigma = {0.01, 0.01, 0.0}) {
  MotionModelParams motion;
  motion.delta = {0.0, 0.1, 0.0};
  motion.sigma = {0.02, 0.02, 0.0};
  LocationSensingParams sensing;
  sensing.mu = sensing_mu;
  sensing.sigma = sensing_sigma;
  ObjectModelParams om;
  om.move_probability = move_probability;
  std::vector<ShelfTag> shelf_tags = {{1, {1.5, 2.5, 0.0}},
                                      {2, {1.5, 7.5, 0.0}}};
  return WorldModel(
      std::make_unique<ConeSensorModel>(), MotionModel(motion),
      LocationSensingModel(sensing),
      ObjectLocationModel(om, ShelfRegions({Aabb({1.5, 0, 0}, {2.5, 10, 0})})),
      std::move(shelf_tags));
}

/// Builds one epoch at reader position (0, y) reporting `tags` as read.
inline SyncedEpoch MakeEpoch(int64_t step, double y, std::vector<TagId> tags,
                             double reported_offset_y = 0.0) {
  SyncedEpoch e;
  e.step = step;
  e.time = static_cast<double>(step);
  e.tags = std::move(tags);
  e.has_location = true;
  e.reported_location = {0.0, y + reported_offset_y, 0.0};
  return e;
}

}  // namespace testing_util
}  // namespace rfid
