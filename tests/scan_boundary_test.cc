// Mid-stream scan-boundary detection in the serving path: the detector
// closes scans from record-time signals (reader back at origin, or an idle
// gap with no readings) so the kOnScanComplete emitter policy produces
// events on an endless stream, where Flush() never comes. Everything here
// drives a SitePipeline directly with hand-built record streams.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "serve/site_pipeline.h"
#include "serve/subscription_bus.h"
#include "test_util.h"

namespace rfid {
namespace {

using testing_util::MakeLineWorld;

constexpr SiteId kSite = 7;

SitePipelineConfig ScanConfig(ScanBoundaryConfig::Mode mode) {
  SitePipelineConfig config;
  config.epoch_seconds = 1.0;
  config.max_lateness_seconds = 0.0;  // Epochs close as time advances.
  config.engine.factored.num_reader_particles = 20;
  config.engine.factored.num_object_particles = 60;
  config.engine.factored.seed = 11;
  config.engine.emitter.policy = EmitPolicy::kOnScanComplete;
  config.scan_boundary.mode = mode;
  config.scan_boundary.origin_radius = 1.0;
  config.scan_boundary.depart_radius = 3.0;
  config.scan_boundary.idle_gap_seconds = 5.0;
  return config;
}

/// One out-and-back pass down the aisle: the reader starts at y = 0, walks
/// to y = 8 reading object tag 1000 on the way, and returns to y = 0. With
/// `tail` extra seconds of standing at the origin afterwards (watermark
/// push so the return epoch itself closes).
std::vector<ServeRecord> OutAndBack(double t0, int tail = 3) {
  std::vector<ServeRecord> records;
  auto at = [&records](double time, double y) {
    ReaderLocationReport report;
    report.time = time;
    report.location = {0.0, y, 0.0};
    records.push_back(ServeRecord::Location(kSite, report));
  };
  const std::vector<double> path = {0.0, 2.0, 4.0, 6.0, 8.0,
                                    8.0, 6.0, 4.0, 2.0, 0.0};
  for (size_t i = 0; i < path.size(); ++i) {
    const double time = t0 + static_cast<double>(i);
    at(time, path[i]);
    if (path[i] > 1.0 && path[i] < 7.0) {
      records.push_back(ServeRecord::Reading(kSite, {time, 1000}));
    }
  }
  for (int i = 0; i < tail; ++i) {
    at(t0 + static_cast<double>(path.size() + i), 0.0);
  }
  return records;
}

TEST(ScanBoundaryTest, ReaderReturnFiresMidStreamWithoutFlush) {
  auto pipeline = SitePipeline::Create(
      kSite, MakeLineWorld(), ScanConfig(ScanBoundaryConfig::Mode::kReaderReturn));
  ASSERT_TRUE(pipeline.ok());
  SubscriptionBus bus;
  std::vector<LocationEvent> events;
  bus.SubscribeEvents(
      [&events](SiteId, const LocationEvent& e) { events.push_back(e); });

  for (const ServeRecord& r : OutAndBack(0.0)) {
    pipeline.value()->OnRecord(r, &bus);
  }
  // No Flush() — the return to origin alone must have closed the scan and
  // dispatched the kOnScanComplete events for the tag seen during it.
  EXPECT_EQ(pipeline.value()->Stats().scan_completes, 1u);
  ASSERT_FALSE(events.empty());
  bool saw_tag = false;
  for (const LocationEvent& e : events) saw_tag |= (e.tag == 1000);
  EXPECT_TRUE(saw_tag);

  // A second pass is a new scan: origin re-captured, fires again.
  for (const ServeRecord& r : OutAndBack(20.0)) {
    pipeline.value()->OnRecord(r, &bus);
  }
  EXPECT_EQ(pipeline.value()->Stats().scan_completes, 2u);
}

TEST(ScanBoundaryTest, ReaderReturnRequiresDeparture) {
  // Hysteresis: jitter near the dock (never past depart_radius) must not
  // close a scan that never started moving.
  auto pipeline = SitePipeline::Create(
      kSite, MakeLineWorld(), ScanConfig(ScanBoundaryConfig::Mode::kReaderReturn));
  ASSERT_TRUE(pipeline.ok());
  SubscriptionBus bus;
  for (int t = 0; t < 20; ++t) {
    ReaderLocationReport report;
    report.time = static_cast<double>(t);
    report.location = {0.0, (t % 2 == 0) ? 0.0 : 0.5, 0.0};
    pipeline.value()->OnRecord(ServeRecord::Location(kSite, report), &bus);
  }
  EXPECT_EQ(pipeline.value()->Stats().scan_completes, 0u);
}

TEST(ScanBoundaryTest, IdleGapFiresAfterQuietRecordTime) {
  auto pipeline = SitePipeline::Create(
      kSite, MakeLineWorld(), ScanConfig(ScanBoundaryConfig::Mode::kIdleGap));
  ASSERT_TRUE(pipeline.ok());
  SubscriptionBus bus;
  std::vector<LocationEvent> events;
  bus.SubscribeEvents(
      [&events](SiteId, const LocationEvent& e) { events.push_back(e); });

  // Active phase: readings up to t = 4.
  for (int t = 0; t <= 4; ++t) {
    ReaderLocationReport report;
    report.time = static_cast<double>(t);
    report.location = {0.0, static_cast<double>(t), 0.0};
    pipeline.value()->OnRecord(ServeRecord::Location(kSite, report), &bus);
    pipeline.value()->OnRecord(
        ServeRecord::Reading(kSite, {static_cast<double>(t), 1000}), &bus);
  }
  EXPECT_EQ(pipeline.value()->Stats().scan_completes, 0u);

  // Quiet phase: location keeps reporting (stream is alive, watermark
  // advances) but no tag reads; after idle_gap_seconds of record time the
  // scan closes mid-stream.
  for (int t = 5; t <= 12; ++t) {
    ReaderLocationReport report;
    report.time = static_cast<double>(t);
    report.location = {0.0, 4.0, 0.0};
    pipeline.value()->OnRecord(ServeRecord::Location(kSite, report), &bus);
  }
  EXPECT_EQ(pipeline.value()->Stats().scan_completes, 1u);
  EXPECT_FALSE(events.empty());
}

TEST(ScanBoundaryTest, FlushOnlyModeNeverFiresMidStream) {
  // Seed behavior preserved: with the detector off, the same out-and-back
  // stream produces no mid-stream scans — only Flush() closes the scan.
  auto pipeline = SitePipeline::Create(
      kSite, MakeLineWorld(), ScanConfig(ScanBoundaryConfig::Mode::kOnFlushOnly));
  ASSERT_TRUE(pipeline.ok());
  SubscriptionBus bus;
  for (const ServeRecord& r : OutAndBack(0.0)) {
    pipeline.value()->OnRecord(r, &bus);
  }
  EXPECT_EQ(pipeline.value()->Stats().scan_completes, 0u);
  pipeline.value()->Flush(&bus);
  EXPECT_EQ(pipeline.value()->Stats().scan_completes, 1u);
}

TEST(ScanBoundaryTest, DetectorInertUnderOtherEmitterPolicies) {
  // The detector only makes sense for kOnScanComplete; under kAfterDelay it
  // must not fire (scan_completes counts only kOnScanComplete flushes).
  SitePipelineConfig config = ScanConfig(ScanBoundaryConfig::Mode::kReaderReturn);
  config.engine.emitter.policy = EmitPolicy::kAfterDelay;
  config.engine.emitter.delay_seconds = 2.0;
  auto pipeline = SitePipeline::Create(kSite, MakeLineWorld(), config);
  ASSERT_TRUE(pipeline.ok());
  SubscriptionBus bus;
  for (const ServeRecord& r : OutAndBack(0.0)) {
    pipeline.value()->OnRecord(r, &bus);
  }
  EXPECT_EQ(pipeline.value()->Stats().scan_completes, 0u);
}

TEST(ScanBoundaryTest, CreateValidatesDetectorConfig) {
  SitePipelineConfig bad = ScanConfig(ScanBoundaryConfig::Mode::kReaderReturn);
  bad.scan_boundary.origin_radius = 0.0;
  EXPECT_FALSE(SitePipeline::Create(kSite, MakeLineWorld(), bad).ok());

  bad = ScanConfig(ScanBoundaryConfig::Mode::kReaderReturn);
  bad.scan_boundary.depart_radius = 0.5;  // < origin_radius: no hysteresis.
  EXPECT_FALSE(SitePipeline::Create(kSite, MakeLineWorld(), bad).ok());

  bad = ScanConfig(ScanBoundaryConfig::Mode::kIdleGap);
  bad.scan_boundary.idle_gap_seconds = 0.0;
  EXPECT_FALSE(SitePipeline::Create(kSite, MakeLineWorld(), bad).ok());
}

TEST(ScanBoundaryTest, DetectorStateSurvivesCheckpoint) {
  // Cut the stream mid-scan — after the reader departed but before it
  // returned — checkpoint, restore into a fresh pipeline, and feed the rest.
  // The restored run must close the scan exactly like the uninterrupted
  // one: same scan count, same events, same timestamps.
  const std::vector<ServeRecord> records = OutAndBack(0.0);
  const size_t cut = 6;  // Reader at y = 8..6: departed, not yet returned.

  auto run_events = [&records](SitePipeline* pipeline, SubscriptionBus* bus,
                               size_t from, size_t to,
                               std::vector<LocationEvent>* out) {
    bus->SubscribeEvents(
        [out](SiteId, const LocationEvent& e) { out->push_back(e); });
    for (size_t i = from; i < to; ++i) pipeline->OnRecord(records[i], bus);
  };

  // Uninterrupted reference.
  auto clean = SitePipeline::Create(
      kSite, MakeLineWorld(), ScanConfig(ScanBoundaryConfig::Mode::kReaderReturn));
  ASSERT_TRUE(clean.ok());
  std::vector<LocationEvent> clean_events;
  {
    SubscriptionBus bus;
    run_events(clean.value().get(), &bus, 0, records.size(), &clean_events);
  }
  ASSERT_EQ(clean.value()->Stats().scan_completes, 1u);

  // Interrupted: process half, checkpoint, restore, process the rest.
  auto first = SitePipeline::Create(
      kSite, MakeLineWorld(), ScanConfig(ScanBoundaryConfig::Mode::kReaderReturn));
  ASSERT_TRUE(first.ok());
  std::vector<LocationEvent> resumed_events;
  {
    SubscriptionBus bus;
    run_events(first.value().get(), &bus, 0, cut, &resumed_events);
  }
  std::stringstream checkpoint;
  ASSERT_TRUE(first.value()->SaveCheckpoint(checkpoint).ok());

  auto second = SitePipeline::Create(
      kSite, MakeLineWorld(), ScanConfig(ScanBoundaryConfig::Mode::kReaderReturn));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value()->LoadCheckpoint(checkpoint).ok());
  {
    SubscriptionBus bus;
    run_events(second.value().get(), &bus, cut, records.size(),
               &resumed_events);
  }
  EXPECT_EQ(second.value()->Stats().scan_completes, 1u);

  ASSERT_EQ(clean_events.size(), resumed_events.size());
  for (size_t i = 0; i < clean_events.size(); ++i) {
    EXPECT_EQ(clean_events[i].time, resumed_events[i].time) << "event " << i;
    EXPECT_EQ(clean_events[i].tag, resumed_events[i].tag) << "event " << i;
    EXPECT_EQ(clean_events[i].location, resumed_events[i].location)
        << "event " << i;
  }
}

}  // namespace
}  // namespace rfid
