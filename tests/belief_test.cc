// Tests for Gaussian belief compression (§IV-D) and compression policies.
#include <gtest/gtest.h>

#include <cmath>

#include "pf/belief.h"
#include "pf/compression_policy.h"

namespace rfid {
namespace {

std::vector<WeightedPoint> GaussianCloud(const Vec3& mean, const Vec3& stddev,
                                         int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    pts.push_back({{mean.x + rng.Gaussian(0.0, stddev.x),
                    mean.y + rng.Gaussian(0.0, stddev.y),
                    mean.z + rng.Gaussian(0.0, stddev.z)},
                   1.0});
  }
  return pts;
}

// ------------------------------------------------------------------ Fit ---

TEST(GaussianBeliefTest, FitRecoverssMeanAndVariance) {
  const auto pts = GaussianCloud({2.0, -1.0, 0.5}, {0.5, 0.3, 0.1}, 20000, 1);
  const GaussianBelief g = GaussianBelief::Fit(pts);
  EXPECT_NEAR(g.mean().x, 2.0, 0.02);
  EXPECT_NEAR(g.mean().y, -1.0, 0.02);
  EXPECT_NEAR(g.mean().z, 0.5, 0.02);
  EXPECT_NEAR(std::sqrt(g.DiagonalVariance().x), 0.5, 0.02);
  EXPECT_NEAR(std::sqrt(g.DiagonalVariance().y), 0.3, 0.02);
}

TEST(GaussianBeliefTest, FitUsesWeights) {
  // Two clusters; weights pick the first.
  std::vector<WeightedPoint> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({{0, 0, 0}, 0.99 / 100});
  for (int i = 0; i < 100; ++i) pts.push_back({{10, 0, 0}, 0.01 / 100});
  const GaussianBelief g = GaussianBelief::Fit(pts);
  EXPECT_NEAR(g.mean().x, 0.1, 1e-9);
}

TEST(GaussianBeliefTest, FitZeroMassFallsBackToCentroid) {
  std::vector<WeightedPoint> pts = {{{0, 0, 0}, 0.0}, {{2, 0, 0}, 0.0}};
  const GaussianBelief g = GaussianBelief::Fit(pts);
  EXPECT_NEAR(g.mean().x, 1.0, 1e-9);
}

TEST(GaussianBeliefTest, SinglePointHasTinyVariance) {
  const GaussianBelief g = GaussianBelief::Fit({{{3, 4, 5}, 1.0}});
  EXPECT_EQ(g.mean(), Vec3(3, 4, 5));
  EXPECT_LE(g.DiagonalVariance().x, 1e-9);
}

// --------------------------------------------------------------- Sample ---

TEST(GaussianBeliefTest, SampleRoundTripsMoments) {
  const Vec3 mean{1.0, 2.0, 0.0};
  const std::array<double, 6> cov = {0.25, 0.1, 0.0, 0.5, 0.0, 0.01};
  const GaussianBelief g(mean, cov);
  Rng rng(2);
  Vec3 sum;
  double sum_xx = 0, sum_yy = 0, sum_xy = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const Vec3 s = g.Sample(rng);
    sum += s;
    sum_xx += (s.x - mean.x) * (s.x - mean.x);
    sum_yy += (s.y - mean.y) * (s.y - mean.y);
    sum_xy += (s.x - mean.x) * (s.y - mean.y);
  }
  EXPECT_NEAR(sum.x / kN, 1.0, 0.01);
  EXPECT_NEAR(sum.y / kN, 2.0, 0.01);
  EXPECT_NEAR(sum_xx / kN, 0.25, 0.01);
  EXPECT_NEAR(sum_yy / kN, 0.5, 0.01);
  EXPECT_NEAR(sum_xy / kN, 0.1, 0.01);
}

TEST(GaussianBeliefTest, FitThenSampleRoundTrip) {
  const auto pts = GaussianCloud({0, 0, 0}, {1.0, 2.0, 0.0}, 50000, 3);
  const GaussianBelief g = GaussianBelief::Fit(pts);
  Rng rng(4);
  double sum_yy = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const Vec3 s = g.Sample(rng);
    sum_yy += (s.y - g.mean().y) * (s.y - g.mean().y);
  }
  EXPECT_NEAR(std::sqrt(sum_yy / kN), 2.0, 0.05);
}

// --------------------------------------------------------------- LogPdf ---

TEST(GaussianBeliefTest, LogPdfMatchesIsotropicClosedForm) {
  const std::array<double, 6> cov = {1.0, 0.0, 0.0, 1.0, 0.0, 1.0};
  const GaussianBelief g({0, 0, 0}, cov);
  const Vec3 p{1.0, 1.0, 1.0};
  const double expected = -0.5 * 3.0 - 1.5 * std::log(2 * M_PI);
  EXPECT_NEAR(g.LogPdf(p), expected, 1e-4);
  EXPECT_NEAR(g.LogPdf({0, 0, 0}), -1.5 * std::log(2 * M_PI), 1e-4);
}

TEST(GaussianBeliefTest, LogPdfDecaysFromMean) {
  const GaussianBelief g({0, 0, 0}, {1, 0, 0, 1, 0, 1});
  EXPECT_GT(g.LogPdf({0.1, 0, 0}), g.LogPdf({2, 0, 0}));
}

TEST(GaussianBeliefTest, EntropyMatchesClosedForm) {
  const GaussianBelief g({0, 0, 0}, {1, 0, 0, 1, 0, 1});
  const double expected = 1.5 * (1.0 + std::log(2 * M_PI));
  EXPECT_NEAR(g.Entropy(), expected, 1e-4);
}

TEST(GaussianBeliefTest, EntropyGrowsWithVariance) {
  const GaussianBelief small({0, 0, 0}, {0.1, 0, 0, 0.1, 0, 0.1});
  const GaussianBelief large({0, 0, 0}, {10, 0, 0, 10, 0, 10});
  EXPECT_LT(small.Entropy(), large.Entropy());
}

// ------------------------------------------------------------------- KL ---

TEST(GaussianBeliefTest, CompressionErrorEqualsCovarianceTrace) {
  // With the KL-optimal fit (mean = weighted mean), the expected squared
  // error is exactly trace(Sigma).
  const auto pts = GaussianCloud({0, 0, 0}, {1.0, 1.0, 0.5}, 20000, 5);
  const GaussianBelief g = GaussianBelief::Fit(pts);
  const Vec3 v = g.DiagonalVariance();
  EXPECT_NEAR(g.CompressionErrorFrom(pts), v.x + v.y + v.z, 1e-9);
}

TEST(GaussianBeliefTest, CompressionErrorSmallForStabilizedParticles) {
  // A particle cloud that has stabilized to a small region (the situation
  // in which SIV-D compresses) has a tiny expected squared error.
  const auto pts = GaussianCloud({2, 3, 0}, {0.05, 0.05, 0.0}, 2000, 6);
  const GaussianBelief g = GaussianBelief::Fit(pts);
  EXPECT_LT(g.CompressionErrorFrom(pts), 0.01);
}

TEST(GaussianBeliefTest, CompressionErrorLargeForBimodalParticles) {
  // Bimodal particles (e.g. the half-reinit state of SIV-A) lose a lot when
  // collapsed to one Gaussian.
  std::vector<WeightedPoint> pts;
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double cx = (i % 2 == 0) ? -5.0 : 5.0;
    pts.push_back({{cx + rng.Gaussian(0.0, 0.1), rng.Gaussian(0.0, 0.1), 0.0},
                   1.0});
  }
  const GaussianBelief g = GaussianBelief::Fit(pts);
  EXPECT_GT(g.CompressionErrorFrom(pts), 20.0);
}

TEST(GaussianBeliefTest, CompressionErrorNonNegativeAndWeightAware) {
  auto pts = GaussianCloud({1, 1, 0}, {0.2, 0.4, 0.0}, 500, 8);
  const GaussianBelief g = GaussianBelief::Fit(pts);
  EXPECT_GE(g.CompressionErrorFrom(pts), 0.0);
  // Zeroing the weight of far-away points reduces the error.
  auto weighted = pts;
  for (auto& p : weighted) {
    if ((p.position - g.mean()).Norm() > 0.5) p.weight = 0.0;
  }
  EXPECT_LT(g.CompressionErrorFrom(weighted), g.CompressionErrorFrom(pts));
}

TEST(GaussianBeliefTest, PlanarParticlesFactorizeViaRegularization) {
  // z variance is exactly zero; the covariance floor must keep Cholesky and
  // sampling finite.
  const auto pts = GaussianCloud({0, 0, 0}, {1.0, 1.0, 0.0}, 1000, 9);
  const GaussianBelief g = GaussianBelief::Fit(pts);
  Rng rng(10);
  const Vec3 s = g.Sample(rng);
  EXPECT_TRUE(std::isfinite(s.z));
  EXPECT_NEAR(s.z, 0.0, 0.01);
  EXPECT_TRUE(std::isfinite(g.LogPdf({0, 0, 0})));
}

// --------------------------------------------------- CompressionPolicy ----

TEST(CompressionPolicyTest, DisabledSelectsNothing) {
  CompressionPolicyConfig c;
  c.mode = CompressionMode::kDisabled;
  const CompressionPolicy policy(c);
  EXPECT_FALSE(policy.enabled());
  EXPECT_TRUE(policy.SelectForCompression(100, {{0, 0, 0.0}}).empty());
}

TEST(CompressionPolicyTest, UnseenEpochsSelectsStaleObjects) {
  CompressionPolicyConfig c;
  c.mode = CompressionMode::kUnseenEpochs;
  c.compress_after_epochs = 5;
  const CompressionPolicy policy(c);
  const std::vector<CompressionCandidate> cands = {
      {0, 98, 0.0},  // Processed 2 epochs ago: keep.
      {1, 90, 0.0},  // 10 epochs ago: compress.
      {2, 95, 0.0},  // Exactly at threshold: compress.
  };
  const auto selected = policy.SelectForCompression(100, cands);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], 1u);
  EXPECT_EQ(selected[1], 2u);
}

TEST(CompressionPolicyTest, KlThresholdBlocksBadCompressions) {
  CompressionPolicyConfig c;
  c.mode = CompressionMode::kUnseenEpochs;
  c.compress_after_epochs = 1;
  c.kl_threshold = 0.5;
  const CompressionPolicy policy(c);
  const std::vector<CompressionCandidate> cands = {
      {0, 0, 0.1},  // Good fit: compress.
      {1, 0, 2.0},  // Bimodal: keep particles.
  };
  const auto selected = policy.SelectForCompression(100, cands);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], 0u);
}

TEST(CompressionPolicyTest, KlRankedKeepsBudget) {
  CompressionPolicyConfig c;
  c.mode = CompressionMode::kKlRanked;
  c.max_active_objects = 2;
  const CompressionPolicy policy(c);
  const std::vector<CompressionCandidate> cands = {
      {0, 0, 0.5}, {1, 0, 0.1}, {2, 0, 0.9}, {3, 0, 0.2}};
  // 4 active, budget 2 -> compress the 2 lowest-KL: slots 1 and 3.
  const auto selected = policy.SelectForCompression(10, cands);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], 1u);
  EXPECT_EQ(selected[1], 3u);
}

TEST(CompressionPolicyTest, KlRankedNoExcessNoCompression) {
  CompressionPolicyConfig c;
  c.mode = CompressionMode::kKlRanked;
  c.max_active_objects = 10;
  const CompressionPolicy policy(c);
  EXPECT_TRUE(policy.SelectForCompression(10, {{0, 0, 0.1}, {1, 0, 0.2}})
                  .empty());
}

}  // namespace
}  // namespace rfid
