// Tests for the warehouse simulator, trace generator, ground truth and the
// lab deployment emulation.
#include <gtest/gtest.h>

#include <set>

#include "model/cone_sensor.h"
#include "sim/lab.h"
#include "sim/trace.h"
#include "sim/warehouse.h"

namespace rfid {
namespace {

// ------------------------------------------------------------- Warehouse ---

TEST(WarehouseTest, RejectsInvalidConfig) {
  WarehouseConfig wc;
  wc.num_shelves = 0;
  EXPECT_FALSE(BuildWarehouse(wc).ok());
  wc = WarehouseConfig{};
  wc.shelf_length = -1;
  EXPECT_FALSE(BuildWarehouse(wc).ok());
  wc = WarehouseConfig{};
  wc.first_object_tag = 2;  // Collides with shelf tag ids.
  wc.num_shelves = 2;
  wc.shelf_tags_per_shelf = 2;
  EXPECT_FALSE(BuildWarehouse(wc).ok());
}

TEST(WarehouseTest, CountsMatchConfig) {
  WarehouseConfig wc;
  wc.num_shelves = 3;
  wc.objects_per_shelf = 7;
  wc.shelf_tags_per_shelf = 2;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout.value().shelf_boxes.size(), 3u);
  EXPECT_EQ(layout.value().objects.size(), 21u);
  EXPECT_EQ(layout.value().shelf_tags.size(), 6u);
}

TEST(WarehouseTest, TagIdsAreUnique) {
  WarehouseConfig wc;
  wc.num_shelves = 4;
  wc.objects_per_shelf = 10;
  wc.shelf_tags_per_shelf = 3;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  std::set<TagId> ids;
  for (const auto& s : layout.value().shelf_tags) ids.insert(s.tag);
  for (const auto& o : layout.value().objects) ids.insert(o.tag);
  EXPECT_EQ(ids.size(), layout.value().shelf_tags.size() +
                            layout.value().objects.size());
}

TEST(WarehouseTest, ObjectsLieOnTheirShelfFrontEdge) {
  WarehouseConfig wc;
  wc.num_shelves = 2;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  const ShelfRegions regions = layout.value().MakeShelfRegions();
  for (const auto& o : layout.value().objects) {
    EXPECT_DOUBLE_EQ(o.position.x, wc.shelf_x);
    EXPECT_TRUE(regions.Contains(o.position));
  }
}

TEST(WarehouseTest, ObjectsEvenlySpaced) {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.shelf_length = 10.0;
  wc.objects_per_shelf = 10;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  const auto& objs = layout.value().objects;
  for (size_t i = 1; i < objs.size(); ++i) {
    EXPECT_NEAR(objs[i].position.y - objs[i - 1].position.y, 1.0, 1e-9);
  }
}

TEST(WarehouseTest, TotalYExtentIncludesGaps) {
  WarehouseConfig wc;
  wc.num_shelves = 3;
  wc.shelf_length = 10.0;
  wc.shelf_gap = 2.0;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  EXPECT_DOUBLE_EQ(layout.value().TotalYExtent(), 34.0);
}

// ----------------------------------------------------------- GroundTruth ---

TEST(GroundTruthTest, InitialPositions) {
  const std::vector<ObjectPlacement> objs = {{10, {1, 2, 0}}, {11, {3, 4, 0}}};
  const GroundTruth truth(objs, {});
  EXPECT_EQ(truth.PositionAt(10, 0.0).value(), Vec3(1, 2, 0));
  EXPECT_EQ(truth.PositionAt(11, 100.0).value(), Vec3(3, 4, 0));
  EXPECT_FALSE(truth.PositionAt(99, 0.0).ok());
}

TEST(GroundTruthTest, MovementEventsApplyAtTheirTime) {
  const std::vector<ObjectPlacement> objs = {{10, {0, 0, 0}}};
  std::vector<MovementEvent> events = {
      {50.0, 10, {0, 0, 0}, {0, 5, 0}},
      {100.0, 10, {0, 5, 0}, {0, 9, 0}},
  };
  const GroundTruth truth(objs, std::move(events));
  EXPECT_EQ(truth.PositionAt(10, 0.0).value(), Vec3(0, 0, 0));
  EXPECT_EQ(truth.PositionAt(10, 49.9).value(), Vec3(0, 0, 0));
  EXPECT_EQ(truth.PositionAt(10, 50.0).value(), Vec3(0, 5, 0));
  EXPECT_EQ(truth.PositionAt(10, 99.0).value(), Vec3(0, 5, 0));
  EXPECT_EQ(truth.PositionAt(10, 500.0).value(), Vec3(0, 9, 0));
}

TEST(GroundTruthTest, AllTagsSorted) {
  const std::vector<ObjectPlacement> objs = {{30, {}}, {10, {}}, {20, {}}};
  const GroundTruth truth(objs, {});
  EXPECT_EQ(truth.AllTags(), (std::vector<TagId>{10, 20, 30}));
}

// --------------------------------------------------------- TraceGenerator --

TEST(TraceGeneratorTest, EpochCountMatchesPathLength) {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.shelf_length = 10.0;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  RobotConfig robot;
  robot.speed = 0.1;
  robot.start_margin = 2.0;
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), robot, {}, sensor, 1);
  const auto trace = gen.Generate();
  // Path is 14 ft at 0.1 ft/epoch -> ~140 epochs (plus jitter).
  EXPECT_NEAR(static_cast<double>(trace.epochs.size()), 140.0, 15.0);
}

TEST(TraceGeneratorTest, ReportedLocationsCarryConfiguredNoise) {
  WarehouseConfig wc;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  RobotConfig robot;
  robot.sensing_noise.mu = {0.0, 0.5, 0.0};
  robot.sensing_noise.sigma = {0.01, 0.01, 0.0};
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), robot, {}, sensor, 2);
  const auto trace = gen.Generate();
  double mean_residual_y = 0.0;
  for (const auto& e : trace.epochs) {
    mean_residual_y += e.observations.reported_location.y -
                       e.true_reader_pose.position.y;
  }
  mean_residual_y /= trace.epochs.size();
  EXPECT_NEAR(mean_residual_y, 0.5, 0.05);
}

TEST(TraceGeneratorTest, ReadsOnlyHappenWithinSensorRange) {
  WarehouseConfig wc;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, 3);
  const auto trace = gen.Generate();
  const GroundTruth& truth = trace.truth;
  for (const auto& e : trace.epochs) {
    for (TagId tag : e.observations.tags) {
      Vec3 pos;
      if (tag < 1000) {  // Shelf tag.
        bool found = false;
        for (const auto& s : layout.value().shelf_tags) {
          if (s.tag == tag) {
            pos = s.location;
            found = true;
          }
        }
        ASSERT_TRUE(found);
      } else {
        pos = truth.PositionAt(tag, e.observations.time).value();
      }
      EXPECT_LE((pos - e.true_reader_pose.position).Norm(),
                sensor.MaxRange() + 1e-9);
    }
  }
}

TEST(TraceGeneratorTest, EveryObjectIsReadAtLeastOnceAtFullReadRate) {
  WarehouseConfig wc;
  wc.num_shelves = 2;
  wc.objects_per_shelf = 8;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  ConeSensorModel sensor;  // 100% major read rate.
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, 4);
  const auto trace = gen.Generate();
  std::set<TagId> read;
  for (const auto& e : trace.epochs) {
    read.insert(e.observations.tags.begin(), e.observations.tags.end());
  }
  for (const auto& o : layout.value().objects) {
    EXPECT_TRUE(read.count(o.tag)) << "object " << o.tag << " never read";
  }
}

TEST(TraceGeneratorTest, LowerReadRateProducesFewerReads) {
  WarehouseConfig wc;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  auto count_reads = [&](double rr, uint64_t seed) {
    ConeSensorParams p;
    p.major_read_rate = rr;
    ConeSensorModel sensor(p);
    TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, seed);
    const auto trace = gen.Generate();
    size_t reads = 0;
    for (const auto& e : trace.epochs) reads += e.observations.tags.size();
    return reads;
  };
  EXPECT_GT(count_reads(1.0, 5), count_reads(0.5, 5));
}

TEST(TraceGeneratorTest, MultipleRoundsAlternateDirection) {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  RobotConfig robot;
  robot.rounds = 2;
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), robot, {}, sensor, 6);
  const auto trace = gen.Generate();
  // y must go up then come back down.
  const double mid_y =
      trace.epochs[trace.epochs.size() / 2].true_reader_pose.position.y;
  const double end_y = trace.epochs.back().true_reader_pose.position.y;
  EXPECT_GT(mid_y, 5.0);
  EXPECT_LT(end_y, 0.0);
}

TEST(TraceGeneratorTest, MovementEventsRecorded) {
  WarehouseConfig wc;
  wc.num_shelves = 2;
  const auto layout = BuildWarehouse(wc);
  ASSERT_TRUE(layout.ok());
  RobotConfig robot;
  robot.rounds = 4;  // Long trace so several moves trigger.
  ObjectMovementConfig mv;
  mv.enabled = true;
  mv.interval_seconds = 100.0;
  mv.distance = 5.0;
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), robot, mv, sensor, 7);
  const auto trace = gen.Generate();
  EXPECT_GT(trace.truth.events().size(), 2u);
  const ShelfRegions regions = layout.value().MakeShelfRegions();
  for (const auto& ev : trace.truth.events()) {
    EXPECT_TRUE(regions.Contains(ev.to))
        << "moved object left the shelves: " << ev.to;
  }
}

// ------------------------------------------------------------------ Lab ---

TEST(LabTest, RejectsInvalidConfig) {
  LabConfig config;
  config.tags_per_row = 0;
  EXPECT_FALSE(BuildLabDeployment(config).ok());
  config = LabConfig{};
  config.shelf_depth = -1;
  EXPECT_FALSE(BuildLabDeployment(config).ok());
}

TEST(LabTest, GeometryMatchesPaperSetup) {
  const auto lab = BuildLabDeployment(LabConfig{});
  ASSERT_TRUE(lab.ok());
  EXPECT_EQ(lab.value().objects.size(), 80u);      // 80 EPC Gen2 tags.
  EXPECT_EQ(lab.value().shelf_tags.size(), 10u);   // 5 reference tags/row.
  EXPECT_EQ(lab.value().shelf_boxes.size(), 2u);
  // Tags spaced four inches apart.
  EXPECT_NEAR(lab.value().objects[1].position.y -
                  lab.value().objects[0].position.y,
              1.0 / 3.0, 1e-9);
}

TEST(LabTest, RowsAreOnOppositeSides) {
  const auto lab = BuildLabDeployment(LabConfig{});
  ASSERT_TRUE(lab.ok());
  int positive = 0, negative = 0;
  for (const auto& o : lab.value().objects) {
    (o.position.x > 0 ? positive : negative)++;
  }
  EXPECT_EQ(positive, 40);
  EXPECT_EQ(negative, 40);
}

TEST(LabTest, DeadReckoningDriftGrowsToAboutAFoot) {
  const auto lab = BuildLabDeployment(LabConfig{});
  ASSERT_TRUE(lab.ok());
  double max_err = 0.0;
  for (const auto& e : lab.value().trace.epochs) {
    max_err = std::max(max_err,
                       (e.observations.reported_location -
                        e.true_reader_pose.position)
                           .Norm());
  }
  EXPECT_GT(max_err, 0.4);
  EXPECT_LT(max_err, 2.0);
}

TEST(LabTest, LargerTimeoutYieldsMoreReads) {
  LabConfig c250;
  c250.timeout_ms = 250;
  LabConfig c750;
  c750.timeout_ms = 750;
  const auto lab250 = BuildLabDeployment(c250);
  const auto lab750 = BuildLabDeployment(c750);
  ASSERT_TRUE(lab250.ok());
  ASSERT_TRUE(lab750.ok());
  auto total_reads = [](const LabDeployment& lab) {
    size_t n = 0;
    for (const auto& e : lab.trace.epochs) n += e.observations.tags.size();
    return n;
  };
  EXPECT_GT(total_reads(lab750.value()), total_reads(lab250.value()));
}

TEST(LabTest, ShelfDepthControlsRegionWidth) {
  LabConfig ss;
  ss.shelf_depth = 0.66;
  LabConfig ls;
  ls.shelf_depth = 2.6;
  const auto lab_ss = BuildLabDeployment(ss);
  const auto lab_ls = BuildLabDeployment(ls);
  ASSERT_TRUE(lab_ss.ok());
  ASSERT_TRUE(lab_ls.ok());
  EXPECT_NEAR(lab_ss.value().shelf_boxes[0].Extent().x, 0.66, 1e-9);
  EXPECT_NEAR(lab_ls.value().shelf_boxes[0].Extent().x, 2.6, 1e-9);
}

TEST(LabTest, BothRowsGetScanned) {
  const auto lab = BuildLabDeployment(LabConfig{});
  ASSERT_TRUE(lab.ok());
  std::set<TagId> read;
  for (const auto& e : lab.value().trace.epochs) {
    read.insert(e.observations.tags.begin(), e.observations.tags.end());
  }
  int row_a = 0, row_b = 0;
  for (const auto& o : lab.value().objects) {
    if (read.count(o.tag)) (o.position.x > 0 ? row_a : row_b)++;
  }
  EXPECT_GT(row_a, 30);
  EXPECT_GT(row_b, 30);
}

}  // namespace
}  // namespace rfid
