// Tests for the basic (unfactorized) particle filter (§IV-A).
#include <gtest/gtest.h>

#include "pf/basic_filter.h"
#include "test_util.h"

namespace rfid {
namespace {

using testing_util::MakeEpoch;
using testing_util::MakeLineWorld;

BasicFilterConfig SmallConfig(int particles = 2000) {
  BasicFilterConfig c;
  c.num_particles = particles;
  c.seed = 17;
  return c;
}

TEST(BasicFilterTest, UnknownTagHasNoEstimate) {
  BasicParticleFilter filter(MakeLineWorld(), SmallConfig(100));
  filter.ObserveEpoch(MakeEpoch(0, 0.0, {}));
  EXPECT_FALSE(filter.EstimateObject(1000).has_value());
  EXPECT_EQ(filter.NumTrackedObjects(), 0u);
}

TEST(BasicFilterTest, TracksReaderAlongReportedPath) {
  BasicParticleFilter filter(MakeLineWorld(), SmallConfig(500));
  for (int t = 0; t < 50; ++t) {
    filter.ObserveEpoch(MakeEpoch(t, 0.1 * t, {}));
  }
  const ReaderEstimate est = filter.EstimateReader();
  EXPECT_NEAR(est.mean.y, 0.1 * 49, 0.3);
  EXPECT_NEAR(est.mean.x, 0.0, 0.3);
}

TEST(BasicFilterTest, ObjectEstimateConvergesNearTruth) {
  // Object at (1.5, 2.0): the reader passes by and reads it repeatedly.
  BasicParticleFilter filter(MakeLineWorld(), SmallConfig(3000));
  const Vec3 truth{1.5, 2.0, 0.0};
  ConeSensorModel sensor;
  Rng rng(3);
  for (int t = 0; t < 60; ++t) {
    const double y = 0.1 * t - 1.0 + 2.0;  // Pass from y=1 to y=7 around it.
    std::vector<TagId> tags;
    const Pose pose({0.0, y, 0.0}, 0.0);
    if (rng.Bernoulli(sensor.ProbReadAt(pose, truth))) tags.push_back(1000);
    filter.ObserveEpoch(MakeEpoch(t, y, tags));
  }
  const auto est = filter.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->mean.DistanceXYTo(truth), 1.0);
  EXPECT_EQ(est->support, 3000);
}

TEST(BasicFilterTest, NewObjectsGetSlots) {
  BasicParticleFilter filter(MakeLineWorld(), SmallConfig(200));
  filter.ObserveEpoch(MakeEpoch(0, 2.0, {1000, 1001}));
  EXPECT_EQ(filter.NumTrackedObjects(), 2u);
  EXPECT_TRUE(filter.EstimateObject(1000).has_value());
  EXPECT_TRUE(filter.EstimateObject(1001).has_value());
  // Shelf tags never become object slots.
  filter.ObserveEpoch(MakeEpoch(1, 2.1, {1}));
  EXPECT_EQ(filter.NumTrackedObjects(), 2u);
  EXPECT_FALSE(filter.EstimateObject(1).has_value());
}

TEST(BasicFilterTest, InitialParticlesComeFromSensingCone) {
  BasicParticleFilter filter(MakeLineWorld(), SmallConfig(2000));
  filter.ObserveEpoch(MakeEpoch(0, 3.0, {1000}));
  const auto est = filter.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  // The cone points toward +x from (0, 3): the estimate must be in front of
  // the reader and within the (overestimated) range.
  EXPECT_GT(est->mean.x, 0.0);
  EXPECT_LT(est->mean.DistanceXYTo({0, 3, 0}), 4.5 * 1.2 + 0.5);
}

TEST(BasicFilterTest, VarianceShrinksWithMoreReadings) {
  BasicParticleFilter filter(MakeLineWorld(), SmallConfig(2000));
  filter.ObserveEpoch(MakeEpoch(0, 1.0, {1000}));
  const auto first = filter.EstimateObject(1000);
  ASSERT_TRUE(first.has_value());
  const double var0 = first->variance.x + first->variance.y;
  for (int t = 1; t < 30; ++t) {
    filter.ObserveEpoch(MakeEpoch(t, 1.0 + 0.1 * t, {1000}));
  }
  const auto later = filter.EstimateObject(1000);
  ASSERT_TRUE(later.has_value());
  EXPECT_LT(later->variance.x + later->variance.y, var0);
}

TEST(BasicFilterTest, DeterministicForFixedSeed) {
  auto run = [](uint64_t seed) {
    BasicFilterConfig c = SmallConfig(500);
    c.seed = seed;
    BasicParticleFilter filter(MakeLineWorld(), c);
    for (int t = 0; t < 20; ++t) {
      filter.ObserveEpoch(MakeEpoch(t, 0.1 * t, t % 3 == 0
                                                    ? std::vector<TagId>{1000}
                                                    : std::vector<TagId>{}));
    }
    return filter.EstimateObject(1000)->mean;
  };
  const Vec3 a = run(5), b = run(5), c = run(6);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(BasicFilterTest, ShelfTagEvidenceCorrectsSystematicBias) {
  // Reported locations are biased +0.8 in y; shelf tags anchor the truth.
  WorldModel model = MakeLineWorld(1e-4, {0.0, 0.8, 0.0}, {0.05, 0.05, 0.0});
  BasicFilterConfig config = SmallConfig(4000);
  BasicParticleFilter filter(std::move(model), config);
  ConeSensorModel sensor;
  Rng rng(9);
  // True reader path passes the shelf tag at y=2.5; reports say y+0.8.
  for (int t = 0; t < 50; ++t) {
    const double y = 0.1 * t;
    std::vector<TagId> tags;
    const Pose pose({0.0, y, 0.0}, 0.0);
    for (TagId shelf_tag : {1u, 2u}) {
      const Vec3 loc = shelf_tag == 1 ? Vec3{1.5, 2.5, 0} : Vec3{1.5, 7.5, 0};
      if (rng.Bernoulli(sensor.ProbReadAt(pose, loc))) tags.push_back(shelf_tag);
    }
    filter.ObserveEpoch(MakeEpoch(t, y, tags, /*reported_offset_y=*/0.8));
  }
  const ReaderEstimate est = filter.EstimateReader();
  // Without correction the estimate would sit near 4.9 + 0.8; the model knows
  // the bias, so the posterior must land near the true 4.9.
  EXPECT_NEAR(est.mean.y, 4.9, 0.4);
}

}  // namespace
}  // namespace rfid
