// Tests for CSV trace persistence and epoch flattening.
#include <gtest/gtest.h>

#include <sstream>

#include "stream/synchronizer.h"
#include "stream/trace_io.h"

namespace rfid {
namespace {

TEST(TraceIoTest, ReadingsRoundTrip) {
  const std::vector<TagReading> readings = {
      {0.5, 7}, {1.25, 1000}, {1.25, 1001}, {9.75, 42}};
  std::stringstream ss;
  ASSERT_TRUE(WriteReadingsCsv(readings, ss).ok());
  const auto back = ReadReadingsCsv(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), readings.size());
  for (size_t i = 0; i < readings.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.value()[i].time, readings[i].time);
    EXPECT_EQ(back.value()[i].tag, readings[i].tag);
  }
}

TEST(TraceIoTest, LocationsRoundTripWithAndWithoutHeading) {
  std::vector<ReaderLocationReport> reports(2);
  reports[0].time = 1.0;
  reports[0].location = {1.5, -2.25, 0.5};
  reports[0].has_heading = true;
  reports[0].heading = 1.57;
  reports[1].time = 2.0;
  reports[1].location = {0, 0, 0};
  reports[1].has_heading = false;
  std::stringstream ss;
  ASSERT_TRUE(WriteLocationsCsv(reports, ss).ok());
  const auto back = ReadLocationsCsv(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_TRUE(back.value()[0].has_heading);
  EXPECT_DOUBLE_EQ(back.value()[0].heading, 1.57);
  EXPECT_DOUBLE_EQ(back.value()[0].location.y, -2.25);
  EXPECT_FALSE(back.value()[1].has_heading);
}

TEST(TraceIoTest, EmptyStreamsRoundTrip) {
  std::stringstream ss;
  ASSERT_TRUE(WriteReadingsCsv({}, ss).ok());
  const auto back = ReadReadingsCsv(ss);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(TraceIoTest, MissingHeaderFails) {
  std::stringstream ss("1.0,42\n");
  EXPECT_FALSE(ReadReadingsCsv(ss).ok());
  std::stringstream ss2("time,tag\n");  // Wrong header for locations.
  EXPECT_FALSE(ReadLocationsCsv(ss2).ok());
}

TEST(TraceIoTest, MalformedRowsReportLineNumber) {
  std::stringstream ss("time,tag\n1.0,42\nnot_a_number,7\n");
  const auto back = ReadReadingsCsv(ss);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("line 3"), std::string::npos);
}

TEST(TraceIoTest, WrongArityFails) {
  std::stringstream ss("time,tag\n1.0,42,extra\n");
  EXPECT_FALSE(ReadReadingsCsv(ss).ok());
  std::stringstream ss2("time,x,y,z,heading\n1.0,2.0,3.0\n");
  EXPECT_FALSE(ReadLocationsCsv(ss2).ok());
}

TEST(TraceIoTest, BlankLinesAreSkipped) {
  std::stringstream ss("time,tag\n1.0,42\n\n2.0,43\n");
  const auto back = ReadReadingsCsv(ss);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 2u);
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/readings.csv";
  const std::vector<TagReading> readings = {{0.5, 7}, {1.5, 8}};
  ASSERT_TRUE(WriteReadingsCsvFile(readings, path).ok());
  const auto back = ReadReadingsCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 2u);
}

TEST(TraceIoTest, MissingFileFails) {
  EXPECT_EQ(ReadReadingsCsvFile("/nonexistent/path.csv").status().code(),
            StatusCode::kIOError);
}

TEST(TraceIoTest, FlattenThenResynchronizeRoundTrips) {
  // Epochs -> raw streams -> synchronizer -> identical epochs.
  std::vector<SyncedEpoch> epochs(3);
  for (int t = 0; t < 3; ++t) {
    epochs[t].step = t;
    epochs[t].time = static_cast<double>(t);
    epochs[t].has_location = true;
    epochs[t].reported_location = {0.0, 0.1 * t, 0.0};
    epochs[t].has_heading = true;
    epochs[t].reported_heading = 0.25;
  }
  epochs[0].tags = {5, 7};
  epochs[2].tags = {9};

  std::vector<TagReading> readings;
  std::vector<ReaderLocationReport> reports;
  FlattenEpochs(epochs, &readings, &reports);
  EXPECT_EQ(readings.size(), 3u);
  EXPECT_EQ(reports.size(), 3u);

  StreamSynchronizer sync(1.0);
  const auto back = sync.Synchronize(readings, reports);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 3u);
  EXPECT_EQ(back.value()[0].tags, (std::vector<TagId>{5, 7}));
  EXPECT_TRUE(back.value()[1].tags.empty());
  EXPECT_EQ(back.value()[2].tags, (std::vector<TagId>{9}));
  EXPECT_TRUE(back.value()[1].has_location);
  EXPECT_TRUE(back.value()[2].has_heading);
  EXPECT_NEAR(back.value()[2].reported_heading, 0.25, 1e-9);
}

}  // namespace
}  // namespace rfid
