// The determinism contract of the parallel per-object updates: at a fixed
// seed, estimates are bit-identical at any num_threads, because every object
// update draws from a private RNG stream keyed by (seed, slot, step) rather
// than from the shared generator, and the thread pool only changes *where*
// a slot runs, never *what* it computes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "model/spherical_sensor.h"
#include "pf/factored_filter.h"
#include "sim/lab.h"
#include "test_util.h"

namespace rfid {
namespace {

using testing_util::MakeEpoch;
using testing_util::MakeLineWorld;

/// Scheduling knobs for RunLabTrace beyond the thread count; defaults are
/// the production defaults, so the pre-existing tests keep their meaning.
struct SchedOptions {
  bool bucket_by_reader = false;
  bool work_stealing = true;
  int sched_chunk_particles = 0;
  bool lazy_reader_remap = true;
};

/// Runs the factored filter over the first `max_epochs` epochs of a lab
/// trace at the given thread count and returns it for inspection.
std::unique_ptr<FactoredParticleFilter> RunLabTrace(
    const LabDeployment& lab, int num_threads, bool compression,
    size_t max_epochs, const SchedOptions& sched = {}) {
  // The default mirrors FactoredFilterConfig's production default (gather
  // path), so the pre-existing thread-determinism tests keep covering the
  // configuration users actually run; bucketing is an explicit opt-in.
  ExperimentModelOptions options;
  options.motion.delta = {};
  options.motion.sigma = {0.05, 0.15, 0.0};
  options.sensing.sigma = {0.3, 0.3, 0.0};

  FactoredFilterConfig config;
  config.num_reader_particles = 40;
  config.num_object_particles = 200;
  config.seed = 77;
  config.num_threads = num_threads;
  config.bucket_by_reader = sched.bucket_by_reader;
  config.work_stealing = sched.work_stealing;
  config.sched_chunk_particles = sched.sched_chunk_particles;
  config.lazy_reader_remap = sched.lazy_reader_remap;
  config.init.half_angle = M_PI;
  if (compression) {
    config.compression.mode = CompressionMode::kUnseenEpochs;
    config.compression.compress_after_epochs = 6;
  }

  auto filter = std::make_unique<FactoredParticleFilter>(
      MakeWorldModel(lab.shelf_boxes, lab.shelf_tags,
                     std::make_unique<SphericalSensorModel>(lab.sensor),
                     options),
      config);
  size_t fed = 0;
  for (const SimEpoch& e : lab.trace.epochs) {
    if (fed++ >= max_epochs) break;
    filter->ObserveEpoch(e.observations);
  }
  return filter;
}

void ExpectIdenticalEstimates(const FactoredParticleFilter& a,
                              const FactoredParticleFilter& b,
                              const std::vector<ObjectPlacement>& objects) {
  const ReaderEstimate ra = a.EstimateReader();
  const ReaderEstimate rb = b.EstimateReader();
  EXPECT_EQ(ra.mean, rb.mean);
  EXPECT_EQ(ra.variance, rb.variance);
  EXPECT_EQ(ra.heading, rb.heading);

  size_t compared = 0;
  for (const ObjectPlacement& o : objects) {
    const auto ea = a.EstimateObject(o.tag);
    const auto eb = b.EstimateObject(o.tag);
    ASSERT_EQ(ea.has_value(), eb.has_value()) << "tag " << o.tag;
    if (!ea.has_value()) continue;
    // Bit-identical, not approximately equal: Vec3::operator== is exact.
    EXPECT_EQ(ea->mean, eb->mean) << "tag " << o.tag;
    EXPECT_EQ(ea->variance, eb->variance) << "tag " << o.tag;
    EXPECT_EQ(ea->support, eb->support) << "tag " << o.tag;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(ParallelDeterminismTest, LabTrace200EpochsThreads1Vs4) {
  LabConfig lc;
  lc.seed = 900;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());
  ASSERT_GE(lab.value().trace.epochs.size(), 200u);

  const auto serial = RunLabTrace(lab.value(), 1, /*compression=*/false, 200);
  const auto parallel = RunLabTrace(lab.value(), 4, /*compression=*/false, 200);
  EXPECT_EQ(serial->current_step(), 200);
  ExpectIdenticalEstimates(*serial, *parallel, lab.value().objects);
  // Both runs weighted the same total number of particles.
  EXPECT_EQ(serial->particle_updates(), parallel->particle_updates());
}

TEST(ParallelDeterminismTest, LabTraceWithCompressionThreads1Vs4) {
  // Compression + decompression exercise the serial/parallel boundary (the
  // revive decisions run serially, the updates fan out).
  LabConfig lc;
  lc.seed = 901;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());

  const auto serial = RunLabTrace(lab.value(), 1, /*compression=*/true, 200);
  const auto parallel = RunLabTrace(lab.value(), 4, /*compression=*/true, 200);
  EXPECT_EQ(serial->NumCompressedObjects(), parallel->NumCompressedObjects());
  ExpectIdenticalEstimates(*serial, *parallel, lab.value().objects);
}

TEST(ParallelDeterminismTest, BucketedWeightingBitIdenticalToGatherPath) {
  // Reader-run bucketing reorders the Eq. (5) evaluations into contiguous
  // single-frame runs, but every element goes through the same arithmetic
  // and weights are scattered back in original particle order before any
  // accumulation — so 200 lab-trace epochs must be bit-identical to the
  // per-element gather path, at one thread and at four.
  LabConfig lc;
  lc.seed = 902;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());
  ASSERT_GE(lab.value().trace.epochs.size(), 200u);

  SchedOptions bucketed_sched;
  bucketed_sched.bucket_by_reader = true;
  const auto gather = RunLabTrace(lab.value(), 1, /*compression=*/false, 200);
  const auto bucketed =
      RunLabTrace(lab.value(), 1, /*compression=*/false, 200, bucketed_sched);
  EXPECT_EQ(gather->current_step(), 200);
  ExpectIdenticalEstimates(*gather, *bucketed, lab.value().objects);
  EXPECT_EQ(gather->particle_updates(), bucketed->particle_updates());

  const auto bucketed_mt =
      RunLabTrace(lab.value(), 4, /*compression=*/false, 200, bucketed_sched);
  ExpectIdenticalEstimates(*gather, *bucketed_mt, lab.value().objects);
}

TEST(ParallelDeterminismTest, ThreadCountsTwoAndEightAgreeOnLineWorld) {
  // Denser thread matrix on the cheap scripted world: 1, 2, 3, 8 must agree
  // even when lanes outnumber objects.
  auto run = [](int threads) {
    FactoredFilterConfig c;
    c.num_reader_particles = 30;
    c.num_object_particles = 150;
    c.seed = 13;
    c.num_threads = threads;
    auto filter =
        std::make_unique<FactoredParticleFilter>(MakeLineWorld(), c);
    ConeSensorModel sensor;
    Rng rng(99);
    const Vec3 obj_a{1.5, 2.0, 0.0}, obj_b{1.5, 6.0, 0.0};
    for (int t = 0; t < 120; ++t) {
      const double y = 0.1 * t;
      const Pose pose({0.0, y, 0.0}, 0.0);
      std::vector<TagId> tags;
      if (rng.Bernoulli(sensor.ProbReadAt(pose, obj_a))) tags.push_back(1000);
      if (rng.Bernoulli(sensor.ProbReadAt(pose, obj_b))) tags.push_back(1001);
      filter->ObserveEpoch(MakeEpoch(t, y, tags));
    }
    return filter;
  };
  const auto reference = run(1);
  for (int threads : {2, 3, 8}) {
    const auto other = run(threads);
    for (TagId tag : {1000u, 1001u}) {
      const auto ea = reference->EstimateObject(tag);
      const auto eb = other->EstimateObject(tag);
      ASSERT_TRUE(ea.has_value());
      ASSERT_TRUE(eb.has_value());
      EXPECT_EQ(ea->mean, eb->mean) << "threads=" << threads;
      EXPECT_EQ(ea->variance, eb->variance) << "threads=" << threads;
    }
    EXPECT_EQ(reference->EstimateReader().mean, other->EstimateReader().mean)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, SchedulerSweepBitIdentical) {
  // The work-stealing scheduler's whole contract: which lane claims which
  // chunk is a race, but the estimates cannot be. Every point of the
  // schedule matrix — thread counts (including more lanes than cores and
  // more lanes than hot objects), explicit tiny chunks vs auto-sized
  // chunks, stealing on vs the static split — must reproduce the
  // single-threaded reference bit for bit, with compression and
  // hibernation in play.
  LabConfig lc;
  lc.seed = 903;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());
  ASSERT_GE(lab.value().trace.epochs.size(), 200u);

  const auto reference = RunLabTrace(lab.value(), 1, /*compression=*/true, 200);
  for (bool stealing : {true, false}) {
    for (int chunk : {0, 1}) {
      for (int threads : {1, 2, 3, 4, 8}) {
        SchedOptions sched;
        sched.work_stealing = stealing;
        sched.sched_chunk_particles = chunk;
        const auto run =
            RunLabTrace(lab.value(), threads, /*compression=*/true, 200, sched);
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " chunk=" + std::to_string(chunk) +
                     " stealing=" + std::to_string(stealing));
        ExpectIdenticalEstimates(*reference, *run, lab.value().objects);
        EXPECT_EQ(reference->particle_updates(), run->particle_updates());
        EXPECT_EQ(reference->NumCompressedObjects(),
                  run->NumCompressedObjects());
      }
    }
  }
}

TEST(ParallelDeterminismTest, LazyRemapBitIdenticalToEager) {
  // Lazy reader-remap defers repointing a slot's attachments until the slot
  // is next touched, replaying the recorded resamples from the slot's RNG
  // stream keyed at the step each resample fired. Deferral must be purely
  // a scheduling choice: estimates identical to the eager mode that remaps
  // every slot inside ResampleReaders, at one thread and at four, with the
  // compression/hibernation tiers exercising the longest deferrals.
  LabConfig lc;
  lc.seed = 904;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());

  SchedOptions eager;
  eager.lazy_reader_remap = false;
  for (bool compression : {false, true}) {
    const auto eager_run =
        RunLabTrace(lab.value(), 1, compression, 200, eager);
    for (int threads : {1, 4}) {
      const auto lazy_run = RunLabTrace(lab.value(), threads, compression, 200);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " compression=" + std::to_string(compression));
      ExpectIdenticalEstimates(*eager_run, *lazy_run, lab.value().objects);
      EXPECT_EQ(eager_run->particle_updates(), lazy_run->particle_updates());
    }
  }
}

TEST(ParallelDeterminismTest, EngineEventStreamIdenticalAcrossSchedules) {
  // End-to-end: the emitted event stream (what subscribers actually see),
  // not just the belief estimates, must be byte-for-byte stable across
  // scheduling choices — thread count, stealing, and lazy remap.
  LabConfig lc;
  lc.seed = 905;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());

  auto run = [&lab](int threads, bool stealing, bool lazy) {
    EngineConfig c;
    c.factored.num_reader_particles = 40;
    c.factored.num_object_particles = 200;
    c.factored.seed = 42;
    c.factored.num_threads = threads;
    c.factored.work_stealing = stealing;
    c.factored.lazy_reader_remap = lazy;
    c.factored.init.half_angle = M_PI;
    c.factored.compression.mode = CompressionMode::kUnseenEpochs;
    c.factored.compression.compress_after_epochs = 6;
    c.emitter.delay_seconds = 2.0;
    auto engine = RfidInferenceEngine::Create(
        MakeWorldModel(lab.value().shelf_boxes, lab.value().shelf_tags,
                       std::make_unique<SphericalSensorModel>(
                           lab.value().sensor),
                       [] {
                         ExperimentModelOptions options;
                         options.motion.delta = {};
                         options.motion.sigma = {0.05, 0.15, 0.0};
                         options.sensing.sigma = {0.3, 0.3, 0.0};
                         return options;
                       }()),
        c);
    EXPECT_TRUE(engine.ok());
    std::vector<LocationEvent> events;
    size_t fed = 0;
    for (const SimEpoch& e : lab.value().trace.epochs) {
      if (fed++ >= 200) break;
      engine.value()->ProcessEpoch(e.observations);
      for (const LocationEvent& ev : engine.value()->TakeEvents()) {
        events.push_back(ev);
      }
    }
    return events;
  };

  const std::vector<LocationEvent> reference =
      run(/*threads=*/1, /*stealing=*/true, /*lazy=*/true);
  EXPECT_GT(reference.size(), 0u);
  const struct {
    int threads;
    bool stealing;
    bool lazy;
  } variants[] = {{4, true, true}, {4, false, true}, {1, true, false},
                  {8, true, true}};
  for (const auto& v : variants) {
    const std::vector<LocationEvent> events =
        run(v.threads, v.stealing, v.lazy);
    SCOPED_TRACE("threads=" + std::to_string(v.threads) +
                 " stealing=" + std::to_string(v.stealing) +
                 " lazy=" + std::to_string(v.lazy));
    ASSERT_EQ(reference.size(), events.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].time, events[i].time) << "event " << i;
      EXPECT_EQ(reference[i].tag, events[i].tag) << "event " << i;
      EXPECT_EQ(reference[i].location, events[i].location) << "event " << i;
      ASSERT_EQ(reference[i].stats.has_value(), events[i].stats.has_value());
      if (reference[i].stats.has_value()) {
        EXPECT_EQ(reference[i].stats->variance, events[i].stats->variance);
        EXPECT_EQ(reference[i].stats->rmse_radius, events[i].stats->rmse_radius);
        EXPECT_EQ(reference[i].stats->support, events[i].stats->support);
      }
    }
  }
}

}  // namespace
}  // namespace rfid
