// The determinism contract of the parallel per-object updates: at a fixed
// seed, estimates are bit-identical at any num_threads, because every object
// update draws from a private RNG stream keyed by (seed, slot, step) rather
// than from the shared generator, and the thread pool only changes *where*
// a slot runs, never *what* it computes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "model/spherical_sensor.h"
#include "pf/factored_filter.h"
#include "sim/lab.h"
#include "test_util.h"

namespace rfid {
namespace {

using testing_util::MakeEpoch;
using testing_util::MakeLineWorld;

/// Runs the factored filter over the first `max_epochs` epochs of a lab
/// trace at the given thread count and returns it for inspection.
std::unique_ptr<FactoredParticleFilter> RunLabTrace(
    const LabDeployment& lab, int num_threads, bool compression,
    size_t max_epochs, bool bucket_by_reader = false) {
  // The default mirrors FactoredFilterConfig's production default (gather
  // path), so the pre-existing thread-determinism tests keep covering the
  // configuration users actually run; bucketing is an explicit opt-in.
  ExperimentModelOptions options;
  options.motion.delta = {};
  options.motion.sigma = {0.05, 0.15, 0.0};
  options.sensing.sigma = {0.3, 0.3, 0.0};

  FactoredFilterConfig config;
  config.num_reader_particles = 40;
  config.num_object_particles = 200;
  config.seed = 77;
  config.num_threads = num_threads;
  config.bucket_by_reader = bucket_by_reader;
  config.init.half_angle = M_PI;
  if (compression) {
    config.compression.mode = CompressionMode::kUnseenEpochs;
    config.compression.compress_after_epochs = 6;
  }

  auto filter = std::make_unique<FactoredParticleFilter>(
      MakeWorldModel(lab.shelf_boxes, lab.shelf_tags,
                     std::make_unique<SphericalSensorModel>(lab.sensor),
                     options),
      config);
  size_t fed = 0;
  for (const SimEpoch& e : lab.trace.epochs) {
    if (fed++ >= max_epochs) break;
    filter->ObserveEpoch(e.observations);
  }
  return filter;
}

void ExpectIdenticalEstimates(const FactoredParticleFilter& a,
                              const FactoredParticleFilter& b,
                              const std::vector<ObjectPlacement>& objects) {
  const ReaderEstimate ra = a.EstimateReader();
  const ReaderEstimate rb = b.EstimateReader();
  EXPECT_EQ(ra.mean, rb.mean);
  EXPECT_EQ(ra.variance, rb.variance);
  EXPECT_EQ(ra.heading, rb.heading);

  size_t compared = 0;
  for (const ObjectPlacement& o : objects) {
    const auto ea = a.EstimateObject(o.tag);
    const auto eb = b.EstimateObject(o.tag);
    ASSERT_EQ(ea.has_value(), eb.has_value()) << "tag " << o.tag;
    if (!ea.has_value()) continue;
    // Bit-identical, not approximately equal: Vec3::operator== is exact.
    EXPECT_EQ(ea->mean, eb->mean) << "tag " << o.tag;
    EXPECT_EQ(ea->variance, eb->variance) << "tag " << o.tag;
    EXPECT_EQ(ea->support, eb->support) << "tag " << o.tag;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(ParallelDeterminismTest, LabTrace200EpochsThreads1Vs4) {
  LabConfig lc;
  lc.seed = 900;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());
  ASSERT_GE(lab.value().trace.epochs.size(), 200u);

  const auto serial = RunLabTrace(lab.value(), 1, /*compression=*/false, 200);
  const auto parallel = RunLabTrace(lab.value(), 4, /*compression=*/false, 200);
  EXPECT_EQ(serial->current_step(), 200);
  ExpectIdenticalEstimates(*serial, *parallel, lab.value().objects);
  // Both runs weighted the same total number of particles.
  EXPECT_EQ(serial->particle_updates(), parallel->particle_updates());
}

TEST(ParallelDeterminismTest, LabTraceWithCompressionThreads1Vs4) {
  // Compression + decompression exercise the serial/parallel boundary (the
  // revive decisions run serially, the updates fan out).
  LabConfig lc;
  lc.seed = 901;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());

  const auto serial = RunLabTrace(lab.value(), 1, /*compression=*/true, 200);
  const auto parallel = RunLabTrace(lab.value(), 4, /*compression=*/true, 200);
  EXPECT_EQ(serial->NumCompressedObjects(), parallel->NumCompressedObjects());
  ExpectIdenticalEstimates(*serial, *parallel, lab.value().objects);
}

TEST(ParallelDeterminismTest, BucketedWeightingBitIdenticalToGatherPath) {
  // Reader-run bucketing reorders the Eq. (5) evaluations into contiguous
  // single-frame runs, but every element goes through the same arithmetic
  // and weights are scattered back in original particle order before any
  // accumulation — so 200 lab-trace epochs must be bit-identical to the
  // per-element gather path, at one thread and at four.
  LabConfig lc;
  lc.seed = 902;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());
  ASSERT_GE(lab.value().trace.epochs.size(), 200u);

  const auto gather = RunLabTrace(lab.value(), 1, /*compression=*/false, 200,
                                  /*bucket_by_reader=*/false);
  const auto bucketed = RunLabTrace(lab.value(), 1, /*compression=*/false, 200,
                                    /*bucket_by_reader=*/true);
  EXPECT_EQ(gather->current_step(), 200);
  ExpectIdenticalEstimates(*gather, *bucketed, lab.value().objects);
  EXPECT_EQ(gather->particle_updates(), bucketed->particle_updates());

  const auto bucketed_mt = RunLabTrace(lab.value(), 4, /*compression=*/false,
                                       200, /*bucket_by_reader=*/true);
  ExpectIdenticalEstimates(*gather, *bucketed_mt, lab.value().objects);
}

TEST(ParallelDeterminismTest, ThreadCountsTwoAndEightAgreeOnLineWorld) {
  // Denser thread matrix on the cheap scripted world: 1, 2, 3, 8 must agree
  // even when lanes outnumber objects.
  auto run = [](int threads) {
    FactoredFilterConfig c;
    c.num_reader_particles = 30;
    c.num_object_particles = 150;
    c.seed = 13;
    c.num_threads = threads;
    auto filter =
        std::make_unique<FactoredParticleFilter>(MakeLineWorld(), c);
    ConeSensorModel sensor;
    Rng rng(99);
    const Vec3 obj_a{1.5, 2.0, 0.0}, obj_b{1.5, 6.0, 0.0};
    for (int t = 0; t < 120; ++t) {
      const double y = 0.1 * t;
      const Pose pose({0.0, y, 0.0}, 0.0);
      std::vector<TagId> tags;
      if (rng.Bernoulli(sensor.ProbReadAt(pose, obj_a))) tags.push_back(1000);
      if (rng.Bernoulli(sensor.ProbReadAt(pose, obj_b))) tags.push_back(1001);
      filter->ObserveEpoch(MakeEpoch(t, y, tags));
    }
    return filter;
  };
  const auto reference = run(1);
  for (int threads : {2, 3, 8}) {
    const auto other = run(threads);
    for (TagId tag : {1000u, 1001u}) {
      const auto ea = reference->EstimateObject(tag);
      const auto eb = other->EstimateObject(tag);
      ASSERT_TRUE(ea.has_value());
      ASSERT_TRUE(eb.has_value());
      EXPECT_EQ(ea->mean, eb->mean) << "threads=" << threads;
      EXPECT_EQ(ea->variance, eb->variance) << "threads=" << threads;
    }
    EXPECT_EQ(reference->EstimateReader().mean, other->EstimateReader().mean)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rfid
