// Tests for the baselines: uniform sampling and SMURF adaptive smoothing.
#include <gtest/gtest.h>

#include "baseline/smurf.h"
#include "baseline/uniform.h"
#include "model/cone_sensor.h"
#include "test_util.h"

namespace rfid {
namespace {

using testing_util::MakeEpoch;

ShelfRegions LineShelf() {
  return ShelfRegions({Aabb({1.5, 0, 0}, {2.5, 10, 0})});
}

// ----------------------------------------------------------- Uniform ------

TEST(UniformBaselineTest, NoReadsNoEstimate) {
  ConeSensorModel sensor;
  UniformBaseline baseline({}, &sensor, LineShelf());
  baseline.ObserveEpoch(MakeEpoch(0, 1.0, {}));
  EXPECT_FALSE(baseline.EstimateObject(1000).has_value());
}

TEST(UniformBaselineTest, SamplesClipToShelf) {
  ConeSensorModel sensor;
  UniformBaselineConfig config;
  config.mode = UniformEstimateMode::kMeanOfSamples;
  config.samples_per_read = 200;
  UniformBaseline baseline(config, &sensor, LineShelf());
  baseline.ObserveEpoch(MakeEpoch(0, 5.0, {1000}));
  const auto est = baseline.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  // Mean of shelf-clipped samples must be inside the shelf x range.
  EXPECT_GT(est->mean.x, 1.5);
  EXPECT_LT(est->mean.x, 2.5);
}

TEST(UniformBaselineTest, MeanXErrorIsHalfShelfDepthForEdgeTags) {
  // The paper's Fig. 6(b) analysis: with the true tag at the shelf front
  // edge, uniform sampling over the shelf depth w gives mean |x error| w/2.
  ConeSensorModel sensor;
  UniformBaselineConfig config;
  config.mode = UniformEstimateMode::kMeanOfSamples;
  config.samples_per_read = 50;
  UniformBaseline baseline(config, &sensor, LineShelf());
  for (int t = 0; t < 40; ++t) {
    baseline.ObserveEpoch(MakeEpoch(t, 3.0 + 0.1 * t, {1000}));
  }
  const auto est = baseline.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  // True tag at x = 1.5 (front edge); shelf depth 1.0 -> mean x ~ 2.0.
  EXPECT_NEAR(est->mean.x - 1.5, 0.5, 0.1);
}

TEST(UniformBaselineTest, EstimateCentersOnReaderPath) {
  ConeSensorModel sensor;
  UniformBaselineConfig config;
  config.mode = UniformEstimateMode::kMeanOfSamples;
  UniformBaseline baseline(config, &sensor, ShelfRegions{});  // No shelf clip.
  for (int t = 0; t < 20; ++t) {
    baseline.ObserveEpoch(MakeEpoch(t, 5.0, {1000}));
  }
  const auto est = baseline.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->mean.x, 0.0, 0.3);
  EXPECT_NEAR(est->mean.y, 5.0, 0.3);
}

TEST(UniformBaselineTest, EpochsWithoutLocationAreSkipped) {
  ConeSensorModel sensor;
  UniformBaseline baseline({}, &sensor, LineShelf());
  SyncedEpoch e;
  e.tags = {1000};
  e.has_location = false;
  baseline.ObserveEpoch(e);
  EXPECT_FALSE(baseline.EstimateObject(1000).has_value());
}

TEST(UniformBaselineTest, SingleSampleModeReturnsOneOfTheSamples) {
  // Default (paper) mode: the estimate is a single uniformly chosen sample
  // from the sensing-region / shelf overlap.
  ConeSensorModel sensor;
  UniformBaseline baseline({}, &sensor, LineShelf());
  for (int t = 0; t < 10; ++t) {
    baseline.ObserveEpoch(MakeEpoch(t, 5.0, {1000}));
  }
  const auto est = baseline.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  // The sample is clipped to the shelf and within range of the reader path.
  EXPECT_GE(est->mean.x, 1.5);
  EXPECT_LE(est->mean.x, 2.5);
  EXPECT_LT(est->mean.DistanceXYTo({0, 5, 0}), sensor.MaxRange() + 0.01);
}

TEST(UniformBaselineTest, SupportCountsSamples) {
  ConeSensorModel sensor;
  UniformBaselineConfig config;
  config.samples_per_read = 8;
  UniformBaseline baseline(config, &sensor, LineShelf());
  baseline.ObserveEpoch(MakeEpoch(0, 5.0, {1000}));
  baseline.ObserveEpoch(MakeEpoch(1, 5.1, {1000}));
  EXPECT_EQ(baseline.EstimateObject(1000)->support, 16);
}

// -------------------------------------------------------------- SMURF -----

SmurfBaseline MakeSmurf(const SensorModel* sensor) {
  return SmurfBaseline(SmurfConfig{}, sensor, LineShelf());
}

TEST(SmurfTest, PresenceRequiresARead) {
  ConeSensorModel sensor;
  SmurfBaseline smurf = MakeSmurf(&sensor);
  smurf.ObserveEpoch(MakeEpoch(0, 1.0, {}));
  EXPECT_FALSE(smurf.IsPresent(1000));
  smurf.ObserveEpoch(MakeEpoch(1, 1.1, {1000}));
  EXPECT_TRUE(smurf.IsPresent(1000));
}

TEST(SmurfTest, SmoothsOverDropouts) {
  // Read rate ~50%: the adaptive window must grow enough to bridge misses.
  ConeSensorModel sensor;
  SmurfBaseline smurf = MakeSmurf(&sensor);
  Rng rng(1);
  int false_absent = 0, epochs_in_range = 0;
  for (int t = 0; t < 60; ++t) {
    std::vector<TagId> tags;
    if (rng.Bernoulli(0.5)) tags.push_back(1000);
    smurf.ObserveEpoch(MakeEpoch(t, 1.0, tags));
    if (t > 10) {  // After warm-up.
      ++epochs_in_range;
      if (!smurf.IsPresent(1000)) ++false_absent;
    }
  }
  EXPECT_LT(static_cast<double>(false_absent) / epochs_in_range, 0.2);
}

TEST(SmurfTest, WindowGrowsForLossyTags) {
  ConeSensorModel sensor;
  SmurfBaseline smurf = MakeSmurf(&sensor);
  Rng rng(2);
  for (int t = 0; t < 40; ++t) {
    std::vector<TagId> tags;
    if (rng.Bernoulli(0.3)) tags.push_back(1000);
    smurf.ObserveEpoch(MakeEpoch(t, 1.0, tags));
  }
  const auto w = smurf.WindowSize(1000);
  ASSERT_TRUE(w.has_value());
  EXPECT_GE(*w, 4);  // ln(20)/0.3 ~ 10; at least several epochs.
}

TEST(SmurfTest, DepartedTagEventuallyAbsent) {
  ConeSensorModel sensor;
  SmurfBaseline smurf = MakeSmurf(&sensor);
  for (int t = 0; t < 20; ++t) {
    smurf.ObserveEpoch(MakeEpoch(t, 1.0, {1000}));
  }
  EXPECT_TRUE(smurf.IsPresent(1000));
  for (int t = 20; t < 60; ++t) {
    smurf.ObserveEpoch(MakeEpoch(t, 1.0, {}));
  }
  EXPECT_FALSE(smurf.IsPresent(1000));
}

TEST(SmurfTest, LocationEstimateAveragesScopePeriod) {
  ConeSensorModel sensor;
  SmurfBaseline smurf = MakeSmurf(&sensor);
  // Reader sweeps past the tag from y=3 to y=7, reading at every epoch.
  for (int t = 0; t < 40; ++t) {
    smurf.ObserveEpoch(MakeEpoch(t, 3.0 + 0.1 * t, {1000}));
  }
  // Tag leaves scope.
  for (int t = 40; t < 80; ++t) {
    smurf.ObserveEpoch(MakeEpoch(t, 7.0 + 0.1 * (t - 40), {}));
  }
  const auto est = smurf.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  // Average of samples around the sweep midpoint (y~5), within the shelf in x.
  EXPECT_NEAR(est->mean.y, 5.2, 1.2);
  EXPECT_GT(est->mean.x, 1.4);
}

TEST(SmurfTest, CannotCorrectReportedLocationBias) {
  // The documented SMURF weakness (§V-C): samples follow the *reported*
  // location, so a systematic +1 ft y bias shifts the estimate by ~+1 ft.
  ConeSensorModel sensor;
  SmurfBaseline smurf = MakeSmurf(&sensor);
  for (int t = 0; t < 40; ++t) {
    smurf.ObserveEpoch(MakeEpoch(t, 3.0 + 0.1 * t, {1000},
                                 /*reported_offset_y=*/1.0));
  }
  for (int t = 40; t < 80; ++t) {
    smurf.ObserveEpoch(MakeEpoch(t, 7.0 + 0.1 * (t - 40), {},
                                 /*reported_offset_y=*/1.0));
  }
  const auto est = smurf.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->mean.y, 5.7);  // Biased upward from the true midpoint ~5.
}

TEST(SmurfTest, SecondScopePeriodReplacesEstimate) {
  ConeSensorModel sensor;
  SmurfBaseline smurf = MakeSmurf(&sensor);
  for (int t = 0; t < 20; ++t) smurf.ObserveEpoch(MakeEpoch(t, 2.0, {1000}));
  for (int t = 20; t < 60; ++t) smurf.ObserveEpoch(MakeEpoch(t, 6.0, {}));
  const auto first = smurf.EstimateObject(1000);
  ASSERT_TRUE(first.has_value());
  // Tag reappears near y=8.
  for (int t = 60; t < 90; ++t) smurf.ObserveEpoch(MakeEpoch(t, 8.0, {1000}));
  for (int t = 90; t < 130; ++t) smurf.ObserveEpoch(MakeEpoch(t, 12.0, {}));
  const auto second = smurf.EstimateObject(1000);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(second->mean.y, first->mean.y + 2.0);
}

TEST(SmurfTest, UnknownTagHasNoState) {
  ConeSensorModel sensor;
  const SmurfBaseline smurf = MakeSmurf(&sensor);
  EXPECT_FALSE(smurf.EstimateObject(42).has_value());
  EXPECT_FALSE(smurf.IsPresent(42));
  EXPECT_FALSE(smurf.WindowSize(42).has_value());
}

}  // namespace
}  // namespace rfid
