// Tests for resampling: ESS, weight normalization, and the unbiasedness of
// all three resampling schemes.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "pf/resample.h"

namespace rfid {
namespace {

// ---------------------------------------------------------------- ESS -----

TEST(EssTest, UniformWeightsGiveN) {
  const std::vector<double> w(10, 0.1);
  EXPECT_NEAR(EffectiveSampleSize(w), 10.0, 1e-9);
}

TEST(EssTest, DegenerateWeightsGiveOne) {
  std::vector<double> w(10, 0.0);
  w[3] = 1.0;
  EXPECT_NEAR(EffectiveSampleSize(w), 1.0, 1e-9);
}

TEST(EssTest, ZeroWeightsGiveZero) {
  EXPECT_EQ(EffectiveSampleSize(std::vector<double>(5, 0.0)), 0.0);
}

TEST(EssTest, BetweenOneAndN) {
  const std::vector<double> w = {0.5, 0.25, 0.125, 0.125};
  const double ess = EffectiveSampleSize(w);
  EXPECT_GT(ess, 1.0);
  EXPECT_LT(ess, 4.0);
}

// ------------------------------------------------------- Normalization ----

TEST(NormalizeWeightsTest, ScalesToUnitSum) {
  std::vector<double> w = {1.0, 3.0, 4.0};
  EXPECT_TRUE(NormalizeWeights(&w));
  EXPECT_NEAR(w[0], 0.125, 1e-12);
  EXPECT_NEAR(w[1], 0.375, 1e-12);
  EXPECT_NEAR(w[2], 0.5, 1e-12);
}

TEST(NormalizeWeightsTest, ZeroMassFallsBackToUniform) {
  std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  EXPECT_FALSE(NormalizeWeights(&w));
  for (double x : w) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(NormalizeLogWeightsTest, MatchesDirectNormalization) {
  const std::vector<double> lw = {std::log(1.0), std::log(3.0), std::log(4.0)};
  std::vector<double> w;
  EXPECT_TRUE(NormalizeLogWeights(lw, &w));
  EXPECT_NEAR(w[0], 0.125, 1e-12);
  EXPECT_NEAR(w[2], 0.5, 1e-12);
}

TEST(NormalizeLogWeightsTest, HandlesExtremeMagnitudes) {
  // Without the max-log trick this would under/overflow.
  const std::vector<double> lw = {-1e5, -1e5 + std::log(2.0)};
  std::vector<double> w;
  EXPECT_TRUE(NormalizeLogWeights(lw, &w));
  EXPECT_NEAR(w[0], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(w[1], 2.0 / 3.0, 1e-9);
}

TEST(NormalizeLogWeightsTest, AllNegInfFallsBackToUniform) {
  const double ninf = -std::numeric_limits<double>::infinity();
  std::vector<double> w;
  EXPECT_FALSE(NormalizeLogWeights({ninf, ninf}, &w));
  EXPECT_NEAR(w[0], 0.5, 1e-12);
}

// ---------------------------------------------------------- Resampling ----

class ResampleSchemeTest : public ::testing::TestWithParam<ResampleScheme> {};

TEST_P(ResampleSchemeTest, AncestorsWithinBounds) {
  Rng rng(1);
  std::vector<double> w = {0.1, 0.2, 0.3, 0.4};
  const auto anc = ResampleAncestors(w, 100, GetParam(), rng);
  ASSERT_EQ(anc.size(), 100u);
  for (uint32_t a : anc) EXPECT_LT(a, 4u);
}

TEST_P(ResampleSchemeTest, UnbiasedOffspringCounts) {
  // E[count of ancestor i] = n * w_i for every scheme.
  Rng rng(2);
  const std::vector<double> w = {0.05, 0.15, 0.3, 0.5};
  constexpr size_t kCount = 200;
  constexpr int kTrials = 2000;
  std::vector<double> totals(w.size(), 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto anc = ResampleAncestors(w, kCount, GetParam(), rng);
    for (uint32_t a : anc) totals[a] += 1.0;
  }
  for (size_t i = 0; i < w.size(); ++i) {
    const double mean_count = totals[i] / kTrials;
    EXPECT_NEAR(mean_count, kCount * w[i], kCount * 0.02)
        << "ancestor " << i;
  }
}

TEST_P(ResampleSchemeTest, DegenerateWeightPicksOnlySurvivor) {
  Rng rng(3);
  std::vector<double> w = {0.0, 1.0, 0.0};
  const auto anc = ResampleAncestors(w, 50, GetParam(), rng);
  for (uint32_t a : anc) EXPECT_EQ(a, 1u);
}

TEST_P(ResampleSchemeTest, SingleParticle) {
  Rng rng(4);
  const auto anc = ResampleAncestors({1.0}, 10, GetParam(), rng);
  ASSERT_EQ(anc.size(), 10u);
  for (uint32_t a : anc) EXPECT_EQ(a, 0u);
}

TEST_P(ResampleSchemeTest, CountLargerThanParticles) {
  Rng rng(5);
  const std::vector<double> w = {0.5, 0.5};
  const auto anc = ResampleAncestors(w, 1000, GetParam(), rng);
  EXPECT_EQ(anc.size(), 1000u);
}

TEST_P(ResampleSchemeTest, CountSmallerThanParticles) {
  Rng rng(6);
  const std::vector<double> w(100, 0.01);
  const auto anc = ResampleAncestors(w, 10, GetParam(), rng);
  EXPECT_EQ(anc.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ResampleSchemeTest,
                         ::testing::Values(ResampleScheme::kMultinomial,
                                           ResampleScheme::kSystematic,
                                           ResampleScheme::kResidual));

TEST(SystematicTest, LowVarianceOffspringCounts) {
  // Systematic resampling guarantees counts within 1 of n * w_i.
  Rng rng(7);
  const std::vector<double> w = {0.1, 0.2, 0.3, 0.4};
  const auto anc = ResampleAncestors(w, 100, ResampleScheme::kSystematic, rng);
  std::map<uint32_t, int> counts;
  for (uint32_t a : anc) ++counts[a];
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(counts[i], 100 * w[i], 1.0) << "ancestor " << i;
  }
}

TEST(ResidualTest, DeterministicFloorCopies) {
  // Residual resampling must produce at least floor(n * w_i) copies.
  Rng rng(8);
  const std::vector<double> w = {0.25, 0.75};
  const auto anc = ResampleAncestors(w, 100, ResampleScheme::kResidual, rng);
  std::map<uint32_t, int> counts;
  for (uint32_t a : anc) ++counts[a];
  EXPECT_GE(counts[0], 25);
  EXPECT_GE(counts[1], 75);
  EXPECT_EQ(counts[0] + counts[1], 100);
}

TEST(MultinomialTest, AncestorsAreSorted) {
  // The sorted-uniforms construction yields non-decreasing ancestors, which
  // keeps downstream copies cache-friendly.
  Rng rng(9);
  const std::vector<double> w = {0.1, 0.2, 0.3, 0.4};
  const auto anc = ResampleAncestors(w, 200, ResampleScheme::kMultinomial, rng);
  for (size_t i = 1; i < anc.size(); ++i) EXPECT_LE(anc[i - 1], anc[i]);
}

}  // namespace
}  // namespace rfid
