// Tests for the sensing-region index (§IV-C).
#include <gtest/gtest.h>

#include "index/sensing_index.h"

namespace rfid {
namespace {

TEST(SensingIndexTest, EmptyProbeFindsNothing) {
  SensingRegionIndex index;
  std::vector<uint32_t> out;
  index.Probe(Aabb({0, 0, 0}, {10, 10, 0}), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(index.num_entries(), 0u);
}

TEST(SensingIndexTest, ProbeReturnsOverlappingEntries) {
  SensingRegionIndex index;
  index.Insert(Aabb({0, 0, 0}, {2, 2, 0}), {1, 2});
  index.Insert(Aabb({10, 10, 0}, {12, 12, 0}), {3});
  std::vector<uint32_t> out;
  index.Probe(Aabb({1, 1, 0}, {3, 3, 0}), &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
}

TEST(SensingIndexTest, ProbeDeduplicatesAcrossEntries) {
  SensingIndexConfig config;
  config.merge_distance_fraction = 0.0;  // No merging for this test.
  SensingRegionIndex index(config);
  index.Insert(Aabb({0, 0, 0}, {2, 2, 0}), {7, 8});
  index.Insert(Aabb({1, 1, 0}, {3, 3, 0}), {8, 9});
  std::vector<uint32_t> out;
  index.Probe(Aabb({0, 0, 0}, {4, 4, 0}), &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{7, 8, 9}));
}

TEST(SensingIndexTest, ResultIsSorted) {
  SensingIndexConfig config;
  config.merge_distance_fraction = 0.0;
  SensingRegionIndex index(config);
  index.Insert(Aabb({0, 0, 0}, {2, 2, 0}), {9, 3, 5});
  std::vector<uint32_t> out;
  index.Probe(Aabb({0, 0, 0}, {1, 1, 0}), &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{3, 5, 9}));
}

TEST(SensingIndexTest, NearbyInsertsMerge) {
  SensingIndexConfig config;
  config.merge_distance_fraction = 0.25;
  SensingRegionIndex index(config);
  // Boxes of radius 4.5 whose centers move 0.1 per epoch: all merge.
  for (int i = 0; i < 10; ++i) {
    const Vec3 c{0.0, i * 0.1, 0.0};
    index.Insert(Aabb::FromCenterRadius(c, 4.5), {static_cast<uint32_t>(i)});
  }
  EXPECT_EQ(index.num_entries(), 1u);
  std::vector<uint32_t> out;
  index.Probe(Aabb({0, 0, 0}, {0.1, 0.1, 0}), &out);
  EXPECT_EQ(out.size(), 10u);  // Union of all merged object sets.
}

TEST(SensingIndexTest, DistantInsertsDoNotMerge) {
  SensingIndexConfig config;
  config.merge_distance_fraction = 0.25;
  SensingRegionIndex index(config);
  for (int i = 0; i < 5; ++i) {
    const Vec3 c{0.0, i * 10.0, 0.0};
    index.Insert(Aabb::FromCenterRadius(c, 2.0), {static_cast<uint32_t>(i)});
  }
  EXPECT_EQ(index.num_entries(), 5u);
  // Probe near one center only picks its entry.
  std::vector<uint32_t> out;
  index.Probe(Aabb::FromCenterRadius({0, 20, 0}, 0.5), &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{2}));
}

TEST(SensingIndexTest, ReaderPathScenario) {
  // Simulates the Case-2 lookup of the paper: a reader sweeps down the
  // aisle; probing where it has been must return exactly the objects
  // recorded near that stretch.
  SensingRegionIndex index;
  for (int i = 0; i < 200; ++i) {
    const Vec3 c{0.0, i * 0.1, 0.0};
    // Objects recorded at epoch i: ids around i.
    index.Insert(Aabb::FromCenterRadius(c, 4.5),
                 {static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1)});
  }
  std::vector<uint32_t> near_start;
  index.Probe(Aabb::FromCenterRadius({0, 0, 0}, 1.0), &near_start);
  EXPECT_FALSE(near_start.empty());
  // Far-away probe (Case 4 region) returns nothing.
  std::vector<uint32_t> far;
  index.Probe(Aabb::FromCenterRadius({100, 100, 0}, 1.0), &far);
  EXPECT_TRUE(far.empty());
}

TEST(SensingIndexTest, MergeUnionsAreDeduplicated) {
  SensingRegionIndex index;
  index.Insert(Aabb::FromCenterRadius({0, 0, 0}, 4.0), {1, 2});
  index.Insert(Aabb::FromCenterRadius({0, 0.05, 0}, 4.0), {2, 3});  // Merges.
  EXPECT_EQ(index.num_entries(), 1u);
  std::vector<uint32_t> out;
  index.Probe(Aabb::FromCenterRadius({0, 0, 0}, 1.0), &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2, 3}));
}

}  // namespace
}  // namespace rfid
