// Subscription bus: dispatch ordering, per-site operator isolation, and the
// §II-B query operators running as live subscriptions.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/subscription_bus.h"

namespace rfid {
namespace {

LocationEvent Event(double time, TagId tag, Vec3 location) {
  LocationEvent e;
  e.time = time;
  e.tag = tag;
  e.location = location;
  return e;
}

TEST(SubscriptionBusTest, PreservesEventOrderAndSubscriptionOrder) {
  SubscriptionBus bus;
  // Two raw subscriptions interleave deterministically: per event batch,
  // subscription 1 sees everything before subscription 2 sees anything of
  // the next batch, and within one subscription events keep stream order.
  std::vector<std::string> log;
  bus.SubscribeEvents([&log](SiteId site, const LocationEvent& e) {
    log.push_back("a:" + std::to_string(site) + ":" + std::to_string(e.tag));
  });
  bus.SubscribeEvents([&log](SiteId site, const LocationEvent& e) {
    log.push_back("b:" + std::to_string(site) + ":" + std::to_string(e.tag));
  });

  bus.Dispatch(1, {Event(0.0, 10, {0, 0, 0}), Event(0.0, 11, {1, 0, 0})});
  bus.Dispatch(1, {Event(1.0, 12, {2, 0, 0})});

  const std::vector<std::string> expected = {"a:1:10", "a:1:11", "b:1:10",
                                             "b:1:11", "a:1:12", "b:1:12"};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(bus.dispatched_events(), 6u);
}

TEST(SubscriptionBusTest, SiteFilterDropsOtherSites) {
  SubscriptionBus bus;
  std::vector<SiteId> seen;
  bus.SubscribeEvents(
      [&seen](SiteId site, const LocationEvent&) { seen.push_back(site); },
      /*site=*/SiteId{2});
  bus.Dispatch(1, {Event(0.0, 10, {0, 0, 0})});
  bus.Dispatch(2, {Event(0.0, 11, {0, 0, 0})});
  bus.Dispatch(3, {Event(0.0, 12, {0, 0, 0})});
  EXPECT_EQ(seen, std::vector<SiteId>{2});
}

TEST(SubscriptionBusTest, LocationUpdateStateIsPerSite) {
  SubscriptionBus bus;
  std::vector<std::pair<SiteId, TagId>> updates;
  bus.SubscribeLocationUpdates(
      0.5, [&updates](SiteId site, const LocationEvent& e) {
        updates.emplace_back(site, e.tag);
      });
  // Same tag id in two sites: each site's partition row is independent, so
  // both first events emit, and unmoved repeats are suppressed per site.
  bus.Dispatch(1, {Event(0.0, 10, {0, 0, 0})});
  bus.Dispatch(2, {Event(0.0, 10, {9, 9, 0})});
  bus.Dispatch(1, {Event(1.0, 10, {0.1, 0, 0})});   // < 0.5 ft: suppressed.
  bus.Dispatch(2, {Event(1.0, 10, {12, 9, 0})});    // 3 ft: emits.
  const std::vector<std::pair<SiteId, TagId>> expected = {
      {1, 10}, {2, 10}, {2, 10}};
  EXPECT_EQ(updates, expected);
}

TEST(SubscriptionBusTest, FireCodeQueryAlertsThroughBus) {
  SubscriptionBus bus;
  std::vector<FireCodeAlert> alerts;
  bus.SubscribeFireCode(
      /*window_seconds=*/5.0, /*weight_limit=*/100.0,
      [](TagId) { return 60.0; }, /*cell_size_feet=*/1.0,
      [&alerts](SiteId, const FireCodeAlert& alert) {
        alerts.push_back(alert);
      });
  bus.Dispatch(1, {Event(0.0, 10, {0.5, 0.5, 0})});
  EXPECT_TRUE(alerts.empty());  // 60 <= 100.
  bus.Dispatch(1, {Event(1.0, 11, {0.5, 0.5, 0})});
  ASSERT_EQ(alerts.size(), 1u);  // 120 > 100.
  EXPECT_DOUBLE_EQ(alerts[0].total_weight, 120.0);
  // Other site, same cell: independent window, no alert from one event.
  bus.Dispatch(2, {Event(1.0, 12, {0.5, 0.5, 0})});
  EXPECT_EQ(alerts.size(), 1u);
}

TEST(SubscriptionBusTest, ColocationCandidatesPerSite) {
  SubscriptionBus bus;
  ColocationConfig config;
  config.min_joint_observations = 2;
  const auto id = bus.SubscribeColocation(config);
  for (int i = 0; i < 3; ++i) {
    const double t = static_cast<double>(i);
    bus.Dispatch(1, {Event(t, 10, {0, 0, 0}), Event(t, 11, {0.2, 0, 0})});
    bus.Dispatch(2, {Event(t, 20, {0, 0, 0}), Event(t, 21, {50, 0, 0})});
  }
  const auto site1 = bus.ColocationCandidates(id, 1);
  ASSERT_EQ(site1.size(), 1u);
  EXPECT_EQ(site1[0].a, 10u);
  EXPECT_EQ(site1[0].b, 11u);
  EXPECT_TRUE(bus.ColocationCandidates(id, 2).empty());
  EXPECT_TRUE(bus.ColocationCandidates(id, 99).empty());
}

TEST(SubscriptionBusTest, OperatorStatsSnapshotCoversEveryInstance) {
  SubscriptionBus bus;
  bus.SubscribeEvents([](SiteId, const LocationEvent&) {});  // No state.
  const auto update_id =
      bus.SubscribeLocationUpdates(0.1, [](SiteId, const LocationEvent&) {});
  const auto fire_id = bus.SubscribeFireCode(
      5.0, 100.0, [](TagId) { return 10.0; }, 1.0,
      [](SiteId, const FireCodeAlert&) {});
  const auto coloc_id = bus.SubscribeColocation({});

  bus.Dispatch(1, {Event(0.0, 10, {0, 0, 0}), Event(0.0, 11, {0.2, 0, 0})});
  bus.Dispatch(2, {Event(0.0, 10, {5, 5, 0})});

  const auto rows = bus.OperatorStatsSnapshot();
  // Raw subscriptions report nothing; the three operators report one row
  // per site they saw, sites in ascending order within a subscription.
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].subscription, update_id);
  EXPECT_EQ(std::string(rows[0].kind), "location_update");
  EXPECT_EQ(rows[0].site, 1);
  EXPECT_EQ(rows[0].stats.entries, 2u);  // Two tags partitioned at site 1.
  EXPECT_EQ(rows[1].site, 2);
  EXPECT_EQ(rows[1].stats.entries, 1u);
  EXPECT_EQ(std::string(rows[2].kind), "fire_code");
  EXPECT_EQ(rows[2].subscription, fire_id);
  EXPECT_GT(rows[2].stats.entries, 0u);
  EXPECT_EQ(std::string(rows[4].kind), "colocation");
  EXPECT_EQ(rows[4].subscription, coloc_id);
  EXPECT_GT(rows[4].stats.entries, 0u);
  for (const auto& row : rows) EXPECT_GT(row.stats.bytes_estimate, 0u);
}

TEST(SubscriptionBusTest, ConcurrentDispatchAndStatsSnapshots) {
  // TSan coverage for the operator state paths: two shards dispatch
  // different sites through the same subscriptions (per-subscription mutex)
  // while a monitor thread polls OperatorStatsSnapshot.
  SubscriptionBus bus;
  std::atomic<uint64_t> updates{0}, alerts{0};
  bus.SubscribeLocationUpdates(
      0.01,
      [&updates](SiteId, const LocationEvent&) {
        updates.fetch_add(1, std::memory_order_relaxed);
      },
      std::nullopt, /*ttl_seconds=*/5.0);
  FireCodeConfig fire_config;
  fire_config.window_seconds = 5.0;
  fire_config.weight_limit = 50.0;
  fire_config.disarm_limit = 30.0;
  bus.SubscribeFireCode(
      fire_config, [](TagId) { return 20.0; },
      [&alerts](SiteId, const FireCodeAlert&) {
        alerts.fetch_add(1, std::memory_order_relaxed);
      });
  const auto coloc_id = bus.SubscribeColocation({});

  constexpr int kEventsPerSite = 400;
  auto producer = [&bus](SiteId site) {
    for (int i = 0; i < kEventsPerSite; ++i) {
      const double t = i * 0.5;
      const double x = (i % 13) * 0.4;
      bus.Dispatch(site, {Event(t, 10 + site, {x, 0, 0}),
                          Event(t, 20 + site, {x + 0.1, 0, 0})});
    }
  };
  std::thread site1([&] { producer(1); });
  std::thread site2([&] { producer(2); });
  std::thread monitor([&bus] {
    for (int i = 0; i < 50; ++i) {
      const auto rows = bus.OperatorStatsSnapshot();
      for (const auto& row : rows) {
        EXPECT_LE(row.stats.entries, 100000u);  // Touch every field.
      }
      std::this_thread::yield();
    }
  });
  site1.join();
  site2.join();
  monitor.join();

  EXPECT_GT(updates.load(), 0u);
  EXPECT_GT(alerts.load(), 0u);
  EXPECT_EQ(bus.ColocationCandidates(coloc_id, 1).size(), 1u);
  EXPECT_EQ(bus.ColocationCandidates(coloc_id, 2).size(), 1u);
  const auto rows = bus.OperatorStatsSnapshot();
  ASSERT_EQ(rows.size(), 6u);  // Three operator subs x two sites.
}

TEST(SubscriptionBusTest, UnsubscribeStopsDelivery) {
  SubscriptionBus bus;
  int count = 0;
  const auto id = bus.SubscribeEvents(
      [&count](SiteId, const LocationEvent&) { ++count; });
  bus.Dispatch(1, {Event(0.0, 10, {0, 0, 0})});
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(bus.Unsubscribe(id));
  EXPECT_FALSE(bus.Unsubscribe(id));
  bus.Dispatch(1, {Event(1.0, 11, {0, 0, 0})});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.num_subscriptions(), 0u);
}

TEST(SubscriptionBusTest, ReentrantRegistryMutationThrowsInsteadOfDeadlocking) {
  // Subscribe/Unsubscribe from inside a dispatch callback used to
  // self-deadlock on the registry lock (shared held across Dispatch,
  // exclusive wanted by the mutation) — a silent pump-lane hang. It now
  // fails fast with std::logic_error on the dispatching thread.
  SubscriptionBus bus;
  int caught_subscribe = 0;
  int caught_unsubscribe = 0;
  const auto id = bus.SubscribeEvents(
      [&](SiteId, const LocationEvent&) {
        try {
          bus.SubscribeEvents([](SiteId, const LocationEvent&) {});
        } catch (const std::logic_error&) {
          ++caught_subscribe;
        }
        try {
          bus.Unsubscribe(999);
        } catch (const std::logic_error&) {
          ++caught_unsubscribe;
        }
      });
  bus.Dispatch(1, {Event(0.0, 10, {0, 0, 0})});
  EXPECT_EQ(caught_subscribe, 1);
  EXPECT_EQ(caught_unsubscribe, 1);
  // The bus survives the rejected mutation: the registry is unchanged and
  // dispatch keeps working, including mutations once dispatch has returned.
  EXPECT_EQ(bus.num_subscriptions(), 1u);
  EXPECT_TRUE(bus.Unsubscribe(id));
  bus.Dispatch(1, {Event(1.0, 11, {0, 0, 0})});
  EXPECT_EQ(caught_subscribe, 1);
}

TEST(SubscriptionBusTest, RegistryMutationFromOtherThreadsStillWorks) {
  // The re-entrancy guard is per-thread: a different thread subscribing
  // while this one is mid-dispatch must still be allowed (that is ordinary
  // reader/writer contention on the registry lock, not a deadlock).
  SubscriptionBus bus;
  std::atomic<int> dispatched{0};
  bus.SubscribeEvents(
      [&](SiteId, const LocationEvent&) { ++dispatched; });
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load()) {
      const auto id =
          bus.SubscribeEvents([](SiteId, const LocationEvent&) {});
      bus.Unsubscribe(id);
    }
  });
  for (int i = 0; i < 200; ++i) {
    bus.Dispatch(1, {Event(static_cast<double>(i), 10, {0, 0, 0})});
  }
  stop.store(true);
  mutator.join();
  EXPECT_EQ(dispatched.load(), 200);
  EXPECT_EQ(bus.num_subscriptions(), 1u);
}

}  // namespace
}  // namespace rfid
