// Adaptive inference scheduling: elastic per-object particle budgets and
// the idle-tag hibernation tier.
//
// Contracts under test:
//  * budgets shrink toward min_object_particles as a posterior settles and
//    never leave [min_object_particles, num_object_particles];
//  * elastic + hibernation stay bit-identical across thread counts at a
//    fixed seed (the resize and the collapse both run off per-slot streams
//    or the serial section);
//  * a hibernated tag leaves the sweep, revives on its next reading, and
//    the revived estimate lands where the always-full-budget run does;
//  * on the lab trace, elastic + hibernation match the full-budget
//    baseline's accuracy to a few percent;
//  * the load-shed knobs scale budgets and the hibernation horizon, and
//    resetting them restores configured behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/experiment.h"
#include "model/spherical_sensor.h"
#include "pf/factored_filter.h"
#include "sim/lab.h"
#include "test_util.h"

namespace rfid {
namespace {

using testing_util::MakeEpoch;
using testing_util::MakeLineWorld;

constexpr TagId kTagA = 1000;
constexpr TagId kTagB = 1001;
const Vec3 kObjA{1.5, 2.0, 0.0};
const Vec3 kObjB{1.5, 8.0, 0.0};

FactoredFilterConfig ElasticConfig() {
  FactoredFilterConfig c;
  c.num_reader_particles = 30;
  c.num_object_particles = 200;
  c.min_object_particles = 40;
  c.seed = 4242;
  return c;
}

/// Reader oscillates around y = `center` for `epochs` steps, reading tags
/// by their true read probability; `rng` drives the readings so interleaved
/// phases stay reproducible.
void Loiter(FactoredParticleFilter* filter, ConeSensorModel* sensor, Rng* rng,
            double center, int epochs, int* step) {
  for (int i = 0; i < epochs; ++i, ++(*step)) {
    const double y = center + 0.3 * std::sin(0.4 * i);
    const Pose pose({0.0, y, 0.0}, 0.0);
    std::vector<TagId> tags;
    if (rng->Bernoulli(sensor->ProbReadAt(pose, kObjA))) tags.push_back(kTagA);
    if (rng->Bernoulli(sensor->ProbReadAt(pose, kObjB))) tags.push_back(kTagB);
    filter->ObserveEpoch(MakeEpoch(*step, y, tags));
  }
}

TEST(ElasticBudgetTest, SettledTagShrinksWithinBounds) {
  FactoredParticleFilter filter(MakeLineWorld(), ElasticConfig());
  ConeSensorModel sensor;
  Rng rng(5);
  int step = 0;
  Loiter(&filter, &sensor, &rng, kObjA.y, 80, &step);

  const auto* state = filter.FindObject(kTagA);
  ASSERT_NE(state, nullptr);
  ASSERT_FALSE(state->IsCompressed());
  // 80 epochs of repeated reads from nearby poses collapse the posterior
  // well below the full-budget spread scale, so the budget must have left
  // the full count — and must respect both bounds.
  EXPECT_LT(state->particles.size(), 200u);
  EXPECT_GE(state->particles.size(), 40u);

  // The estimate still tracks truth with the reduced budget.
  const auto est = filter.EstimateObject(kTagA);
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->mean.DistanceXYTo(kObjA), 1.0);
}

TEST(ElasticBudgetTest, FreshTagRespectsBoundsAndConverges) {
  FactoredParticleFilter filter(MakeLineWorld(), ElasticConfig());
  filter.ObserveEpoch(MakeEpoch(0, kObjA.y, {kTagA}));
  const auto* state = filter.FindObject(kTagA);
  ASSERT_NE(state, nullptr);
  // Initialization happens at the full budget; the first update may already
  // shrink (one reading from a close pose genuinely concentrates the
  // posterior), but never below the floor or above the cap.
  EXPECT_GE(state->particles.size(), 40u);
  EXPECT_LE(state->particles.size(), 200u);
}

std::unique_ptr<FactoredParticleFilter> RunLabElastic(
    const LabDeployment& lab, int num_threads, size_t max_epochs,
    bool elastic, bool hibernate) {
  ExperimentModelOptions options;
  options.motion.delta = {};
  options.motion.sigma = {0.05, 0.15, 0.0};
  options.sensing.sigma = {0.3, 0.3, 0.0};

  FactoredFilterConfig config;
  config.num_reader_particles = 40;
  config.num_object_particles = 200;
  config.seed = 77;
  config.num_threads = num_threads;
  config.init.half_angle = M_PI;
  if (elastic) config.min_object_particles = 32;
  if (hibernate) {
    config.compression.mode = CompressionMode::kUnseenEpochs;
    config.compression.compress_after_epochs = 6;
    config.compression.hibernate_after_epochs = 25;
  }

  auto filter = std::make_unique<FactoredParticleFilter>(
      MakeWorldModel(lab.shelf_boxes, lab.shelf_tags,
                     std::make_unique<SphericalSensorModel>(lab.sensor),
                     options),
      config);
  size_t fed = 0;
  for (const SimEpoch& e : lab.trace.epochs) {
    if (fed++ >= max_epochs) break;
    filter->ObserveEpoch(e.observations);
  }
  return filter;
}

TEST(ElasticBudgetTest, DeterministicAcrossThreadCountsWithHibernation) {
  LabConfig lc;
  lc.seed = 910;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());
  ASSERT_GE(lab.value().trace.epochs.size(), 200u);

  const auto serial = RunLabElastic(lab.value(), 1, 200, /*elastic=*/true,
                                    /*hibernate=*/true);
  const auto parallel = RunLabElastic(lab.value(), 4, 200, /*elastic=*/true,
                                      /*hibernate=*/true);
  EXPECT_GT(serial->NumHibernatedObjects(), 0u);
  EXPECT_EQ(serial->NumHibernatedObjects(), parallel->NumHibernatedObjects());
  EXPECT_EQ(serial->NumCompressedObjects(), parallel->NumCompressedObjects());
  EXPECT_EQ(serial->NumActiveObjects(), parallel->NumActiveObjects());
  EXPECT_EQ(serial->particle_updates(), parallel->particle_updates());

  size_t compared = 0;
  for (const ObjectPlacement& o : lab.value().objects) {
    const auto ea = serial->EstimateObject(o.tag);
    const auto eb = parallel->EstimateObject(o.tag);
    ASSERT_EQ(ea.has_value(), eb.has_value()) << "tag " << o.tag;
    if (!ea.has_value()) continue;
    EXPECT_EQ(ea->mean, eb->mean) << "tag " << o.tag;
    EXPECT_EQ(ea->variance, eb->variance) << "tag " << o.tag;
    EXPECT_EQ(ea->support, eb->support) << "tag " << o.tag;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(ElasticBudgetTest, ElasticAccuracyTracksFullBudgetOnLabTrace) {
  LabConfig lc;
  lc.seed = 911;
  const auto lab = BuildLabDeployment(lc);
  ASSERT_TRUE(lab.ok());

  const auto full = RunLabElastic(lab.value(), 1, 200, /*elastic=*/false,
                                  /*hibernate=*/false);
  const auto elastic = RunLabElastic(lab.value(), 1, 200, /*elastic=*/true,
                                     /*hibernate=*/true);

  ErrorStats full_err, elastic_err;
  for (const ObjectPlacement& o : lab.value().objects) {
    const auto ef = full->EstimateObject(o.tag);
    const auto ee = elastic->EstimateObject(o.tag);
    if (!ef.has_value() || !ee.has_value()) continue;
    full_err.Add(ef->mean, o.position);
    elastic_err.Add(ee->mean, o.position);
  }
  ASSERT_GT(full_err.count(), 10u);
  // Same tag set was scored for both; elastic may not degrade the paper's
  // headline metric by more than a few percent (plus a small absolute
  // allowance for the noise floor of a single 200-epoch run).
  EXPECT_LE(elastic_err.MeanXY(), full_err.MeanXY() * 1.10 + 0.05)
      << "elastic " << elastic_err.MeanXY() << " vs full "
      << full_err.MeanXY();
}

TEST(ElasticBudgetTest, HibernateThenReviveRoundTrip) {
  FactoredFilterConfig config = ElasticConfig();
  config.compression.hibernate_after_epochs = 12;
  FactoredParticleFilter filter(MakeLineWorld(), config);
  ConeSensorModel sensor;
  Rng rng(9);
  int step = 0;

  // Learn tag A, then walk far away (B's neighbourhood) long enough for A
  // to pass the hibernation horizon.
  Loiter(&filter, &sensor, &rng, kObjA.y, 30, &step);
  ASSERT_NE(filter.FindObject(kTagA), nullptr);
  const auto before = filter.EstimateObject(kTagA);
  ASSERT_TRUE(before.has_value());

  Loiter(&filter, &sensor, &rng, kObjB.y, 40, &step);
  const auto* state = filter.FindObject(kTagA);
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->hibernated);
  EXPECT_TRUE(state->IsCompressed());
  EXPECT_TRUE(state->particles.empty());
  EXPECT_EQ(filter.NumHibernatedObjects(), 1u);

  // The summary still answers queries while hibernated.
  const auto during = filter.EstimateObject(kTagA);
  ASSERT_TRUE(during.has_value());
  EXPECT_LT(during->mean.DistanceXYTo(kObjA), 1.5);

  // Coming back and reading the tag revives it through the decompression
  // path, and the estimate re-converges onto truth.
  Loiter(&filter, &sensor, &rng, kObjA.y, 30, &step);
  ASSERT_FALSE(filter.FindObject(kTagA)->hibernated);
  EXPECT_FALSE(filter.FindObject(kTagA)->particles.empty());
  const auto after = filter.EstimateObject(kTagA);
  ASSERT_TRUE(after.has_value());
  EXPECT_LT(after->mean.DistanceXYTo(kObjA), 1.0);
}

TEST(ElasticBudgetTest, HibernatedTagIsSkippedByTheSweep) {
  FactoredFilterConfig config = ElasticConfig();
  config.compression.hibernate_after_epochs = 10;
  FactoredParticleFilter filter(MakeLineWorld(), config);
  ConeSensorModel sensor;
  Rng rng(13);
  int step = 0;
  Loiter(&filter, &sensor, &rng, kObjA.y, 20, &step);
  Loiter(&filter, &sensor, &rng, kObjB.y, 25, &step);
  ASSERT_EQ(filter.NumHibernatedObjects(), 1u);

  // Once hibernated, epochs elsewhere cost the tag nothing: the counter of
  // weighted particles only moves for the active tag.
  const uint64_t updates_at_hibernate = filter.particle_updates();
  const auto summary = filter.EstimateObject(kTagA);
  Loiter(&filter, &sensor, &rng, kObjB.y, 25, &step);
  const auto* state = filter.FindObject(kTagA);
  ASSERT_TRUE(state->hibernated);
  // The hibernated belief is frozen bit-for-bit.
  const auto still = filter.EstimateObject(kTagA);
  ASSERT_TRUE(summary.has_value() && still.has_value());
  EXPECT_EQ(summary->mean, still->mean);
  EXPECT_EQ(summary->variance, still->variance);
  EXPECT_GT(filter.particle_updates(), updates_at_hibernate);
}

TEST(ElasticBudgetTest, LoadShedScalesBudgetsAndRestores) {
  // Elastic off isolates the shed scale: with fixed budgets the particle
  // count is exactly what initialization chose.
  FactoredFilterConfig config = ElasticConfig();
  config.min_object_particles = 0;
  FactoredParticleFilter filter(MakeLineWorld(), config);

  // Shed active: a brand-new tag is initialized at the scaled budget.
  filter.SetLoadShed(/*budget_scale=*/0.25, /*hibernate_scale=*/1.0);
  filter.ObserveEpoch(MakeEpoch(0, kObjA.y, {kTagA}));
  const auto* shed_state = filter.FindObject(kTagA);
  ASSERT_NE(shed_state, nullptr);
  EXPECT_EQ(shed_state->particles.size(), 50u);

  // Back to normal: the next fresh tag gets the configured budget again.
  filter.SetLoadShed(1.0, 1.0);
  filter.ObserveEpoch(MakeEpoch(1, kObjB.y, {kTagB}));
  const auto* normal_state = filter.FindObject(kTagB);
  ASSERT_NE(normal_state, nullptr);
  EXPECT_EQ(normal_state->particles.size(), 200u);
}

TEST(ElasticBudgetTest, LoadShedFloorsAtMinObjectParticles) {
  // With elastic budgets on, min_object_particles floors the shed scale: the
  // governor may thin budgets, never starve them.
  FactoredParticleFilter filter(MakeLineWorld(), ElasticConfig());
  filter.SetLoadShed(/*budget_scale=*/0.01, /*hibernate_scale=*/1.0);
  filter.ObserveEpoch(MakeEpoch(0, kObjA.y, {kTagA}));
  const auto* state = filter.FindObject(kTagA);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->particles.size(), 40u);
}

TEST(ElasticBudgetTest, HibernationPolicySelectsOnlyStaleTags) {
  CompressionPolicyConfig config;
  config.hibernate_after_epochs = 10;
  const CompressionPolicy policy(config);
  EXPECT_TRUE(policy.hibernation_enabled());

  const std::vector<HibernationCandidate> candidates = {
      {0, 100},  // fresh
      {1, 90},   // exactly at the horizon
      {2, 50},   // long stale
      {3, -1},   // never observed
  };
  const auto selected = policy.SelectForHibernation(100, candidates, 10);
  EXPECT_EQ(selected, (std::vector<uint32_t>{1, 2}));

  // The horizon parameter (the governor's shortened value) wins over the
  // configured one.
  const auto aggressive = policy.SelectForHibernation(101, candidates, 1);
  EXPECT_EQ(aggressive, (std::vector<uint32_t>{0, 1, 2}));

  const CompressionPolicy disabled((CompressionPolicyConfig()));
  EXPECT_TRUE(disabled.SelectForHibernation(100, candidates, 10).empty());
}

}  // namespace
}  // namespace rfid
