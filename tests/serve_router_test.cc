// Shard routing stability and the bounded ingest queue's accounting.
#include <gtest/gtest.h>

#include <set>

#include "serve/ingest_queue.h"
#include "serve/shard_router.h"

namespace rfid {
namespace {

TEST(ShardRouterTest, StableAcrossInstancesAndProcessLifetimes) {
  // Routing is a pure function of (site, num_shards): two independently
  // constructed routers must agree, which is what lets a restored checkpoint
  // resume every site on the shard that receives its records.
  ShardRouter a(8);
  ShardRouter b(8);
  for (SiteId site = 0; site < 1000; ++site) {
    EXPECT_EQ(a.ShardOf(site), b.ShardOf(site));
  }
}

TEST(ShardRouterTest, RoutesInRangeAndUsesAllShards) {
  ShardRouter router(4);
  std::set<int> used;
  for (SiteId site = 0; site < 256; ++site) {
    const int shard = router.ShardOf(site);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    used.insert(shard);
  }
  // splitmix64 over 256 dense ids must hit every one of 4 shards.
  EXPECT_EQ(used.size(), 4u);
}

TEST(ShardRouterTest, PinOverridesHashRoute) {
  ShardRouter router(4);
  const SiteId site = 7;
  const int hashed = router.ShardOf(site);
  const int target = (hashed + 1) % 4;
  ASSERT_TRUE(router.Pin(site, target));
  EXPECT_EQ(router.ShardOf(site), target);
  EXPECT_FALSE(router.Pin(site, 4));
  EXPECT_FALSE(router.Pin(site, -1));
}

TEST(IngestQueueTest, FifoAndCounters) {
  IngestQueue queue(8);
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Push(ServeRecord::Reading(1, {double(i), i})));
  }
  EXPECT_EQ(queue.size(), 5u);
  std::vector<ServeRecord> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 3), 3u);
  ASSERT_EQ(batch.size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) EXPECT_EQ(batch[i].reading.tag, i);
  const IngestQueueStats stats = queue.Stats();
  EXPECT_EQ(stats.pushed, 5u);
  EXPECT_EQ(stats.popped, 3u);
  EXPECT_EQ(stats.high_water, 5u);
}

TEST(IngestQueueTest, TryPushRejectsWhenFullAndCounts) {
  IngestQueue queue(2);
  EXPECT_TRUE(queue.TryPush(ServeRecord::Reading(1, {0.0, 1})));
  EXPECT_TRUE(queue.TryPush(ServeRecord::Reading(1, {0.1, 2})));
  EXPECT_FALSE(queue.TryPush(ServeRecord::Reading(1, {0.2, 3})));
  EXPECT_EQ(queue.Stats().rejected_full, 1u);
  std::vector<ServeRecord> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 10), 2u);
  EXPECT_TRUE(queue.TryPush(ServeRecord::Reading(1, {0.3, 4})));
}

TEST(IngestQueueTest, CloseUnblocksAndRejects) {
  IngestQueue queue(1);
  ASSERT_TRUE(queue.Push(ServeRecord::Reading(1, {0.0, 1})));
  queue.Close();
  EXPECT_FALSE(queue.Push(ServeRecord::Reading(1, {0.1, 2})));
  EXPECT_FALSE(queue.TryPush(ServeRecord::Reading(1, {0.2, 3})));
  // Draining still works after close.
  std::vector<ServeRecord> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 10), 1u);
}

}  // namespace
}  // namespace rfid
