// Accuracy and semantics tests for the 4-wide SIMD layer (util/simd.h).
//
// The transcendental contract the sensor kernels rely on (documented in
// simd.h and PERF.md):
//   |Exp(x)  - exp(x)|  <= 1e-9 * exp(x)            for x in [-700, 700]
//   |Acos(x) - acos(x)| <= 1e-9 * max(acos(x), 1e-12) for x in [-1, 1]
// These hold for every backend (AVX2, NEON, scalar fallback) because the
// polynomial algorithms are shared; only the lane arithmetic differs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/simd.h"

namespace rfid {
namespace {

constexpr double kRelTol = 1e-9;

/// Applies a Vec4d->Vec4d function to one scalar through lane 0.
template <typename Fn>
double ApplyLane(const Fn& fn, double x) {
  double in[4] = {x, x, x, x};
  double out[4];
  simd::Store(out, fn(simd::Load(in)));
  return out[0];
}

TEST(SimdTest, ExpMatchesLibmOverDomain) {
  Rng rng(11);
  std::vector<double> xs = {0.0,   1.0,   -1.0,  0.5,    -0.5,  700.0,
                            -700.0, 709.0, -745.0, 1e-300, -1e-9, 41.4};
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Uniform(-700.0, 700.0));
  // The kernels' actual operating range: exponents of read probabilities.
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.Uniform(-50.0, 5.0));
  for (double x : xs) {
    const double got = ApplyLane([](simd::Vec4d v) { return simd::Exp(v); }, x);
    const double want = std::exp(std::clamp(x, -700.0, 700.0));
    EXPECT_NEAR(got, want, kRelTol * want) << "x = " << x;
  }
}

TEST(SimdTest, ExpSaturatesOutsideClampRange) {
  const double hi = ApplyLane([](simd::Vec4d v) { return simd::Exp(v); }, 1e6);
  const double lo = ApplyLane([](simd::Vec4d v) { return simd::Exp(v); }, -1e6);
  EXPECT_DOUBLE_EQ(hi, std::exp(700.0));
  EXPECT_DOUBLE_EQ(lo, std::exp(-700.0));
}

TEST(SimdTest, AcosMatchesLibmOverDomain) {
  Rng rng(13);
  std::vector<double> xs = {-1.0, 1.0, 0.0, 0.5, -0.5, 0.499999999,
                            0.500000001, -0.499999999, -0.500000001,
                            0.999999999, -0.999999999, 1e-300};
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Uniform(-1.0, 1.0));
  // Dense near the endpoints, where acos -> 0 keeps relative error honest.
  for (int i = 0; i < 5000; ++i) xs.push_back(1.0 - std::pow(10.0, rng.Uniform(-15.0, 0.0)));
  for (double x : xs) {
    const double got =
        ApplyLane([](simd::Vec4d v) { return simd::Acos(v); }, x);
    const double want = std::acos(x);
    EXPECT_NEAR(got, want, kRelTol * std::max(want, 1e-12)) << "x = " << x;
  }
}

TEST(SimdTest, LaneOpsAndMasks) {
  const double a[4] = {1.0, -2.0, 3.0, 0.0};
  const double b[4] = {0.5, -2.0, 4.0, -1.0};
  double out[4];

  simd::Store(out, simd::Load(a) + simd::Load(b));
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[3], -1.0);

  simd::Store(out, simd::MulAdd(simd::Load(a), simd::Load(b),
                                simd::Set1(10.0)));
  EXPECT_DOUBLE_EQ(out[2], 22.0);

  // mask = a < b -> only lane 2; Select keeps b there, a elsewhere.
  const simd::Vec4d mask = simd::CmpLt(simd::Load(a), simd::Load(b));
  EXPECT_TRUE(simd::AnyTrue(mask));
  simd::Store(out, simd::Select(mask, simd::Load(b), simd::Load(a)));
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);

  // And with an all-zero mask hard-zeroes any payload, including non-finite.
  const double weird[4] = {std::nan(""), INFINITY, -INFINITY, 5.0};
  simd::Store(out, simd::And(simd::Load(weird),
                             simd::CmpLt(simd::Set1(2.0), simd::Set1(1.0))));
  for (double v : out) EXPECT_EQ(v, 0.0);

  EXPECT_FALSE(
      simd::AnyTrue(simd::CmpGe(simd::Set1(0.0), simd::Set1(1.0))));
}

TEST(SimdTest, ScaleByPow2CoversExponentRange) {
  for (int k : {-1022, -100, -1, 0, 1, 52, 100, 1023}) {
    const double got = ApplyLane(
        [&](simd::Vec4d v) {
          return simd::ScaleByPow2(v, simd::Set1(static_cast<double>(k)));
        },
        1.5);
    EXPECT_DOUBLE_EQ(got, std::ldexp(1.5, k)) << "k = " << k;
  }
}

}  // namespace
}  // namespace rfid
