// The ThreadPool scheduling contract both modes share: fn(i, lane) runs
// exactly once per index regardless of thread count, chunk size, or which
// lane happens to claim which chunk. The dynamic mode's chunk-to-lane
// assignment is a race by design, so these tests only ever assert on
// per-index effects — and the stress cases double as the TSan target for
// the claim cursor.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace rfid {
namespace {

/// Runs ParallelForDynamic and returns how many times each index was
/// visited (always expected to be exactly one).
std::vector<int> CountVisits(ThreadPool* pool, size_t n, size_t chunk) {
  std::vector<std::unique_ptr<std::atomic<int>>> hits(n);
  for (auto& h : hits) h = std::make_unique<std::atomic<int>>(0);
  pool->ParallelForDynamic(n, chunk, [&hits](size_t i, int lane) {
    ASSERT_GE(lane, 0);
    hits[i]->fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<int> counts(n);
  for (size_t i = 0; i < n; ++i) counts[i] = hits[i]->load();
  return counts;
}

TEST(ThreadPoolTest, DynamicVisitsEveryIndexOnceAcrossChunkSizes) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    // Chunk sizes spanning the interesting shapes: unit chunks (maximum
    // stealing), a size that does not divide n, one chunk covering
    // everything, a chunk larger than n, and the auto default.
    for (size_t chunk : {size_t{1}, size_t{7}, size_t{100}, size_t{1000},
                         size_t{0}}) {
      const std::vector<int> counts = CountVisits(&pool, 100, chunk);
      for (size_t i = 0; i < counts.size(); ++i) {
        EXPECT_EQ(counts[i], 1) << "threads=" << threads << " chunk=" << chunk
                                << " index=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, DynamicHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelForDynamic(0, 1, [&ran](size_t, int) { ran = true; });
  EXPECT_FALSE(ran);

  // n == 1 runs inline on the caller (lane 0), no dispatch.
  int lane_seen = -1;
  size_t index_seen = 99;
  pool.ParallelForDynamic(1, 16, [&](size_t i, int lane) {
    index_seen = i;
    lane_seen = lane;
  });
  EXPECT_EQ(index_seen, 0u);
  EXPECT_EQ(lane_seen, 0);

  // More lanes than indices: every index still visited exactly once.
  const std::vector<int> counts = CountVisits(&pool, 3, 1);
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, DynamicMatchesStaticSum) {
  // Both modes must compute the same per-index results; only placement
  // differs. Sum a function of the index through each and compare.
  ThreadPool pool(4);
  const size_t n = 1000;
  auto sum_with = [&pool, n](bool dynamic) {
    std::vector<uint64_t> per_lane(static_cast<size_t>(pool.num_threads()), 0);
    auto fn = [&per_lane](size_t i, int lane) {
      per_lane[static_cast<size_t>(lane)] += i * i + 1;
    };
    if (dynamic) {
      pool.ParallelForDynamic(n, 9, fn);
    } else {
      pool.ParallelFor(n, fn);
    }
    uint64_t total = 0;
    for (uint64_t s : per_lane) total += s;
    return total;
  };
  EXPECT_EQ(sum_with(true), sum_with(false));
}

TEST(ThreadPoolTest, DynamicStressTinyChunks) {
  // TSan target: many back-to-back dynamic jobs with unit chunks maximize
  // contention on the claim cursor and on the job publish/complete
  // handshake. Any missing synchronization in the cursor protocol shows up
  // here as a data race or a lost/duplicated index.
  ThreadPool pool(8);
  const size_t n = 257;  // Prime-ish: last chunk short, uneven claims.
  std::vector<std::unique_ptr<std::atomic<int>>> hits(n);
  for (auto& h : hits) h = std::make_unique<std::atomic<int>>(0);
  for (int round = 0; round < 200; ++round) {
    pool.ParallelForDynamic(n, 1, [&hits](size_t i, int) {
      hits[i]->fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i]->load(), 200) << "index " << i;
  }
}

TEST(ThreadPoolTest, DynamicReusableAfterStaticAndViceVersa) {
  // The two modes share the worker loop; alternating them must not leak
  // job state (cursor, chunk width, mode flag) across jobs.
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 50 + static_cast<size_t>(round);
    const std::vector<int> counts = CountVisits(&pool, n, (round % 5) + 1);
    for (int c : counts) ASSERT_EQ(c, 1);
    std::vector<std::unique_ptr<std::atomic<int>>> hits(n);
    for (auto& h : hits) h = std::make_unique<std::atomic<int>>(0);
    pool.ParallelFor(n, [&hits](size_t i, int) {
      hits[i]->fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i]->load(), 1);
  }
}

}  // namespace
}  // namespace rfid
