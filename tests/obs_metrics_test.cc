// Metrics registry: bucket boundary arithmetic, concurrent-writer
// aggregation (exercised under TSan in CI), Prometheus/JSON rendering, the
// telemetry kill switch, and the trace ring's Chrome JSON dump.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfid {
namespace obs {
namespace {

/// Re-arms telemetry even when a test body fails mid-way (the switch is
/// process-global; leaking "disabled" would cascade into later tests).
struct TelemetryGuard {
  ~TelemetryGuard() { SetTelemetryEnabled(true); }
};

TEST(HistogramBucketsTest, BoundsAreLogSpaced) {
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(10), 1e-6 * 1024.0);
  for (int i = 1; i < Histogram::kNumBounds; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketBound(i),
                     2.0 * Histogram::BucketBound(i - 1));
  }
}

TEST(HistogramBucketsTest, IndexClampsAndRoundsAtExactBounds) {
  // Non-positive and sub-first-bound values land in bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e-9), 0);
  // A value exactly on a bound belongs to that bucket (le semantics), the
  // next representable value above it to the following bucket.
  for (int i = 0; i < Histogram::kNumBounds; ++i) {
    const double bound = Histogram::BucketBound(i);
    EXPECT_EQ(Histogram::BucketIndex(bound), i) << "bound " << i;
    const double above = std::nextafter(bound, 1e9);
    const int expected = i + 1 <= Histogram::kNumBounds ? i + 1 : i;
    EXPECT_EQ(Histogram::BucketIndex(above), expected) << "above bound " << i;
  }
  // Mid-bucket values.
  EXPECT_EQ(Histogram::BucketIndex(3e-6), 2);
  EXPECT_EQ(Histogram::BucketIndex(1.5e-3), 11);
  // Far past the largest finite bound: the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e9), Histogram::kNumBounds);
}

TEST(CounterTest, ConcurrentWritersSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(HistogramTest, ConcurrentObserversAggregateExactly) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("test_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      // Each thread writes one distinct bucket, so per-bucket totals are
      // exact evidence that no sample was lost to a racing shard.
      const double value = Histogram::BucketBound(t);
      for (int i = 0; i < kPerThread; ++i) histogram->Observe(value);
    });
  }
  for (auto& thread : threads) thread.join();
  const Histogram::Snapshot snap = histogram->Snap();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.buckets[t], static_cast<uint64_t>(kPerThread))
        << "bucket " << t;
  }
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += Histogram::BucketBound(t) * kPerThread;
  }
  EXPECT_NEAR(snap.sum_seconds, expected_sum, 1e-9 * snap.count);
}

TEST(GaugeTest, LastWriterWins) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test_gauge");
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 2.5);
  gauge->Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), -1.0);
}

TEST(MetricsRegistryTest, HandlesAreStableAndKeyedByLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "stage=\"a\"");
  Counter* b = registry.GetCounter("x_total", "stage=\"b\"");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, registry.GetCounter("x_total", "stage=\"a\""));
  a->Add(3);
  EXPECT_EQ(a->Value(), 3u);
  EXPECT_EQ(b->Value(), 0u);
}

TEST(MetricsRegistryTest, PrometheusRendering) {
  MetricsRegistry registry;
  registry.GetCounter("app_requests_total", "code=\"200\"")->Add(7);
  registry.GetCounter("app_requests_total", "code=\"500\"")->Add(1);
  registry.GetGauge("app_occupancy")->Set(0.5);
  Histogram* h = registry.GetHistogram("app_latency_seconds");
  h->Observe(1e-6);  // bucket 0
  h->Observe(3e-6);  // bucket 2
  h->Observe(1e9);   // overflow

  const std::string prom = registry.RenderPrometheus();
  // One # TYPE line per family, counters with their label bodies.
  EXPECT_NE(prom.find("# TYPE app_requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("app_requests_total{code=\"200\"} 7\n"),
            std::string::npos);
  EXPECT_NE(prom.find("app_requests_total{code=\"500\"} 1\n"),
            std::string::npos);
  EXPECT_EQ(prom.find("# TYPE app_requests_total counter"),
            prom.rfind("# TYPE app_requests_total counter"));
  EXPECT_NE(prom.find("# TYPE app_occupancy gauge"), std::string::npos);
  EXPECT_NE(prom.find("app_occupancy 0.5\n"), std::string::npos);
  // Histogram buckets are cumulative; +Inf equals the total count.
  EXPECT_NE(prom.find("# TYPE app_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("app_latency_seconds_bucket{le=\"1e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("app_latency_seconds_bucket{le=\"2e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("app_latency_seconds_bucket{le=\"4e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("app_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("app_latency_seconds_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonRendering) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", "k=\"v\"")->Add(2);
  registry.GetGauge("g")->Set(1.5);
  registry.GetHistogram("h_seconds")->Observe(1e-6);

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\":{\"c_total{k=\\\"v\\\"}\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"g\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h_seconds\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[1,0,"), std::string::npos);
}

TEST(MetricsRegistryTest, MixedKindRegistrationKeepsBothSeries) {
  // Registering a second kind on the same (name, labels) key used to flip
  // the entry's kind, silently dropping the first-registered series from
  // every render. Both must stay live and visible.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mixed_metric");
  counter->Add(4);
  Gauge* gauge = registry.GetGauge("mixed_metric");
  gauge->Set(1.5);

  // Handles are stable across the collision.
  EXPECT_EQ(counter, registry.GetCounter("mixed_metric"));
  EXPECT_EQ(gauge, registry.GetGauge("mixed_metric"));
  EXPECT_EQ(counter->Value(), 4u);

  const std::string prom = registry.RenderPrometheus();
  // The TYPE line reflects the FIRST registration, and both values render.
  EXPECT_NE(prom.find("# TYPE mixed_metric counter"), std::string::npos);
  EXPECT_NE(prom.find("mixed_metric 4\n"), std::string::npos);
  EXPECT_NE(prom.find("mixed_metric 1.5\n"), std::string::npos);

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\":{\"mixed_metric\":4}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"mixed_metric\":1.5}"), std::string::npos);
}

TEST(TelemetrySwitchTest, GatesHistogramsAndGaugesButNeverCounters) {
  TelemetryGuard guard;
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("switch_total");
  Gauge* gauge = registry.GetGauge("switch_gauge");
  Histogram* histogram = registry.GetHistogram("switch_seconds");

  SetTelemetryEnabled(false);
  counter->Add();
  gauge->Set(9.0);
  histogram->Observe(1.0);
  {
    LatencyTimer timer(histogram);
  }
  // Counters stay truthful (they back the stats surfaces); samples gated.
  EXPECT_EQ(counter->Value(), 1u);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(histogram->Snap().count, 0u);

  SetTelemetryEnabled(true);
  histogram->Observe(1.0);
  {
    LatencyTimer timer(histogram);
  }
  EXPECT_EQ(histogram->Snap().count, 2u);
}

TEST(LatencyTimerTest, NullHistogramIsANoOp) {
  LatencyTimer timer(nullptr);
  timer.Stop();  // Must not crash.
}

TEST(TracerTest, RecordsSpansAndDumpsChromeJson) {
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    TraceSpan span("unit_span", "test", "arg", 42);
  }
  {
    TraceSpan span("plain_span", "test");
  }
  tracer.SetEnabled(false);
  {
    TraceSpan span("gated_span", "test");
  }
  EXPECT_EQ(tracer.EventCount(), 2u);
  const std::string json = tracer.DumpChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit_span\""), std::string::npos);
  EXPECT_NE(json.find("\"plain_span\""), std::string::npos);
  EXPECT_EQ(json.find("gated_span"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\":42"), std::string::npos);
  tracer.Clear();
  EXPECT_EQ(tracer.EventCount(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace rfid
