// Tests for the containment-candidate (co-location) tracker — the prototype
// of the paper's §VII future work on inter-object relationships.
#include <gtest/gtest.h>

#include "stream/colocation.h"

namespace rfid {
namespace {

LocationEvent Ev(double time, TagId tag, double x, double y) {
  LocationEvent e;
  e.time = time;
  e.tag = tag;
  e.location = {x, y, 0.0};
  return e;
}

TEST(ColocationTest, NoPairsInitially) {
  ColocationTracker tracker;
  EXPECT_TRUE(tracker.Candidates().empty());
  EXPECT_FALSE(tracker.PairStats(1, 2).has_value());
}

TEST(ColocationTest, PersistentlyCloseTagsBecomeCandidates) {
  ColocationTracker tracker;
  for (int t = 0; t < 5; ++t) {
    tracker.Process(Ev(t * 10.0, 1, 2.0, 3.0));
    tracker.Process(Ev(t * 10.0 + 1, 2, 2.3, 3.2));
  }
  const auto candidates = tracker.Candidates();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].a, 1u);
  EXPECT_EQ(candidates[0].b, 2u);
  EXPECT_GE(candidates[0].ratio, 0.8);
  EXPECT_GE(candidates[0].joint_observations, 3);
}

TEST(ColocationTest, DistantTagsAreNotCandidates) {
  ColocationTracker tracker;
  for (int t = 0; t < 5; ++t) {
    tracker.Process(Ev(t * 10.0, 1, 2.0, 3.0));
    tracker.Process(Ev(t * 10.0 + 1, 2, 2.0, 8.0));
  }
  EXPECT_TRUE(tracker.Candidates().empty());
  const auto stats = tracker.PairStats(1, 2);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->colocated_observations, 0);
  EXPECT_GE(stats->joint_observations, 3);
}

TEST(ColocationTest, StaleReportsAreNotJoint) {
  ColocationConfig config;
  config.time_slack_seconds = 5.0;
  ColocationTracker tracker(config);
  tracker.Process(Ev(0.0, 1, 2.0, 3.0));
  tracker.Process(Ev(100.0, 2, 2.0, 3.0));  // Long after tag 1's report.
  EXPECT_FALSE(tracker.PairStats(1, 2).has_value());
}

TEST(ColocationTest, RequiresMinimumJointObservations) {
  ColocationConfig config;
  config.min_joint_observations = 4;
  config.time_slack_seconds = 5.0;  // Only same-round reports are joint.
  ColocationTracker tracker(config);
  for (int t = 0; t < 3; ++t) {
    tracker.Process(Ev(t * 10.0, 1, 2.0, 3.0));
    tracker.Process(Ev(t * 10.0 + 1, 2, 2.1, 3.0));
  }
  EXPECT_TRUE(tracker.Candidates().empty());  // Only 3 joint observations.
}

TEST(ColocationTest, RatioThresholdFiltersFlakyPairs) {
  ColocationConfig config;
  config.min_colocation_ratio = 0.8;
  config.time_slack_seconds = 5.0;  // Only same-round reports are joint.
  ColocationTracker tracker(config);
  // Half of the joint observations are far apart: ratio 0.5 < 0.8.
  for (int t = 0; t < 8; ++t) {
    tracker.Process(Ev(t * 10.0, 1, 2.0, 3.0));
    const double y = (t % 2 == 0) ? 3.0 : 9.0;
    tracker.Process(Ev(t * 10.0 + 1, 2, 2.0, y));
  }
  EXPECT_TRUE(tracker.Candidates().empty());
  const auto stats = tracker.PairStats(1, 2);
  ASSERT_TRUE(stats.has_value());
  EXPECT_NEAR(stats->ratio, 0.5, 0.01);
}

TEST(ColocationTest, CandidatesSortedByRatio) {
  ColocationTracker tracker;
  // Pair (1,2): perfectly co-located. Pair (3,4): mostly co-located.
  for (int t = 0; t < 10; ++t) {
    tracker.Process(Ev(t * 10.0, 1, 2.0, 3.0));
    tracker.Process(Ev(t * 10.0 + 1, 2, 2.1, 3.0));
    tracker.Process(Ev(t * 10.0 + 2, 3, 12.0, 3.0));
    tracker.Process(Ev(t * 10.0 + 3, 4, t < 9 ? 12.1 : 20.0, 3.0));
  }
  const auto candidates = tracker.Candidates();
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].a, 1u);
  EXPECT_GE(candidates[0].ratio, candidates[1].ratio);
}

TEST(ColocationTest, ManyTagsOnlyAdjacentPairsQualify) {
  // Tags on a line, 2 ft apart; radius 1 ft -> no pair qualifies; radius
  // 2.5 ft -> only adjacent pairs do.
  ColocationConfig config;
  config.colocation_radius_feet = 2.5;
  ColocationTracker tracker(config);
  for (int t = 0; t < 5; ++t) {
    for (TagId tag = 0; tag < 4; ++tag) {
      tracker.Process(Ev(t * 10.0 + tag, tag, 2.0 * tag, 0.0));
    }
  }
  for (const auto& c : tracker.Candidates()) {
    EXPECT_EQ(c.b - c.a, 1u) << "non-adjacent pair " << c.a << "," << c.b;
  }
  EXPECT_FALSE(tracker.Candidates().empty());
}

TEST(ColocationTest, DepartedTagsAreEvictedFromTracking) {
  // Regression: the seed skipped stale `last_` entries on every event but
  // never removed them, so a departed tag cost a map visit per event
  // forever. Fresh-set eviction must drop it instead.
  ColocationConfig config;
  config.time_slack_seconds = 5.0;
  ColocationTracker tracker(config);
  tracker.Process(Ev(0.0, 1, 2.0, 3.0));
  tracker.Process(Ev(1.0, 2, 2.1, 3.0));
  EXPECT_EQ(tracker.num_tracked_tags(), 2u);
  // Tag 2 keeps reporting; tag 1 goes silent and must be evicted once the
  // stream clock passes its last report by more than the slack.
  tracker.Process(Ev(4.0, 2, 2.1, 3.0));
  EXPECT_EQ(tracker.num_tracked_tags(), 2u);  // 4 - 0 <= 5: still fresh.
  tracker.Process(Ev(6.0, 2, 2.1, 3.0));
  EXPECT_EQ(tracker.num_tracked_tags(), 1u);  // 6 - 0 > 5: evicted.
  EXPECT_EQ(tracker.Stats().evicted, 1u);
  // The pair's history survives eviction (frozen counts).
  const auto stats = tracker.PairStats(1, 2);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->joint_observations, 2);  // t=1 and t=4.
  EXPECT_EQ(stats->colocated_observations, 2);
}

TEST(ColocationTest, ReturningTagResumesPairHistory) {
  ColocationConfig config;
  config.time_slack_seconds = 5.0;
  config.min_joint_observations = 3;
  ColocationTracker tracker(config);
  // Round 1: two joint observations, then both depart.
  tracker.Process(Ev(0.0, 1, 2.0, 3.0));
  tracker.Process(Ev(1.0, 2, 2.1, 3.0));
  tracker.Process(Ev(2.0, 1, 2.0, 3.0));
  // Round 2, 100 s later: the pair reunites; counts continue from 2.
  tracker.Process(Ev(100.0, 1, 2.0, 3.0));
  tracker.Process(Ev(101.0, 2, 2.1, 3.0));
  const auto stats = tracker.PairStats(1, 2);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->joint_observations, 3);
  EXPECT_EQ(stats->colocated_observations, 3);
  EXPECT_EQ(tracker.Candidates().size(), 1u);
}

TEST(ColocationTest, PairCapDecaysInactivePairs) {
  ColocationConfig config;
  config.time_slack_seconds = 1.0;
  config.max_pairs = 20;
  ColocationTracker tracker(config);
  // Cohorts of 6 tags appear together (15 pairs each), then all depart
  // before the next cohort: without decay, pairs would grow by 15 per
  // cohort; the cap must hold the map at <= 20 (the 15 pairs of the live
  // cohort are exempt, departed cohorts' pairs are decayed).
  for (int cohort = 0; cohort < 60; ++cohort) {
    const double t = cohort * 10.0;
    for (int k = 0; k < 6; ++k) {
      tracker.Process(
          Ev(t + 0.01 * k, 1000 * cohort + k, k * 3.0, 0.0));
    }
  }
  EXPECT_LE(tracker.num_pairs(), 20u);
  EXPECT_GT(tracker.Stats().evicted, 500u);  // Tags + pairs decayed.
}

TEST(ColocationTest, DecayPrefersNeverColocatedPairs) {
  ColocationConfig config;
  config.time_slack_seconds = 1.0;
  config.colocation_radius_feet = 1.0;
  config.min_joint_observations = 2;
  // Big enough that decay never has to dip past the never-co-located
  // victims into real signal (the live cohort's 15 pairs are exempt).
  config.max_pairs = 40;
  ColocationTracker tracker(config);
  // One genuinely co-located pair, observed early...
  tracker.Process(Ev(0.0, 500, 0.0, 0.0));
  tracker.Process(Ev(0.5, 501, 0.2, 0.0));
  tracker.Process(Ev(0.9, 500, 0.0, 0.0));
  // ...then waves of far-apart cohorts blow past the pair cap.
  for (int cohort = 1; cohort <= 20; ++cohort) {
    const double t = cohort * 10.0;
    for (int k = 0; k < 6; ++k) {
      tracker.Process(Ev(t + 0.01 * k, 1000 * cohort + k, k * 50.0, 0.0));
    }
  }
  // The co-located pair's statistics survived the decay sweeps.
  const auto stats = tracker.PairStats(500, 501);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->colocated_observations, 2);
}

}  // namespace
}  // namespace rfid
