// Tests for the factored particle filter (§IV-B..D): factored weighting,
// spatial-index gating, re-initialization rules, belief compression and the
// decompression cycle.
#include <gtest/gtest.h>

#include "pf/factored_filter.h"
#include "test_util.h"

namespace rfid {
namespace {

using testing_util::MakeEpoch;
using testing_util::MakeLineWorld;

FactoredFilterConfig SmallConfig() {
  FactoredFilterConfig c;
  c.num_reader_particles = 50;
  c.num_object_particles = 400;
  c.seed = 23;
  return c;
}

/// Scripted pass of the reader from y=0 to y=0.1*(epochs-1), reading the
/// given object when the true cone would plausibly see it.
void RunPass(FactoredParticleFilter* filter, const Vec3& object_pos,
             TagId tag, int epochs, uint64_t seed, double y0 = 0.0,
             int64_t step0 = 0) {
  ConeSensorModel sensor;
  Rng rng(seed);
  for (int t = 0; t < epochs; ++t) {
    const double y = y0 + 0.1 * t;
    std::vector<TagId> tags;
    const Pose pose({0.0, y, 0.0}, 0.0);
    if (rng.Bernoulli(sensor.ProbReadAt(pose, object_pos))) {
      tags.push_back(tag);
    }
    filter->ObserveEpoch(MakeEpoch(step0 + t, y, tags));
  }
}

TEST(FactoredFilterTest, UnknownTagHasNoEstimate) {
  FactoredParticleFilter filter(MakeLineWorld(), SmallConfig());
  filter.ObserveEpoch(MakeEpoch(0, 0.0, {}));
  EXPECT_FALSE(filter.EstimateObject(1000).has_value());
  EXPECT_EQ(filter.FindObject(1000), nullptr);
}

TEST(FactoredFilterTest, ReaderWeightsAreNormalized) {
  FactoredParticleFilter filter(MakeLineWorld(), SmallConfig());
  for (int t = 0; t < 10; ++t) {
    filter.ObserveEpoch(MakeEpoch(t, 0.1 * t, {}));
  }
  double sum = 0.0;
  for (const auto& r : filter.reader_particles()) sum += r.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FactoredFilterTest, ObjectWeightsAreNormalized) {
  FactoredParticleFilter filter(MakeLineWorld(), SmallConfig());
  filter.ObserveEpoch(MakeEpoch(0, 2.0, {1000}));
  const auto* state = filter.FindObject(1000);
  ASSERT_NE(state, nullptr);
  double sum = 0.0;
  for (const auto& p : state->particles) sum += p.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FactoredFilterTest, ParticlePointersReferenceValidReaders) {
  FactoredParticleFilter filter(MakeLineWorld(), SmallConfig());
  RunPass(&filter, {1.5, 2.0, 0.0}, 1000, 60, 31);
  const auto* state = filter.FindObject(1000);
  ASSERT_NE(state, nullptr);
  for (const auto& p : state->particles) {
    EXPECT_LT(p.reader_idx, filter.reader_particles().size());
  }
}

TEST(FactoredFilterTest, ConvergesNearTruth) {
  FactoredParticleFilter filter(MakeLineWorld(), SmallConfig());
  const Vec3 truth{1.5, 2.0, 0.0};
  RunPass(&filter, truth, 1000, 60, 37);
  const auto est = filter.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->mean.DistanceXYTo(truth), 1.0);
}

TEST(FactoredFilterTest, TracksReaderAlongPath) {
  FactoredParticleFilter filter(MakeLineWorld(), SmallConfig());
  for (int t = 0; t < 50; ++t) {
    filter.ObserveEpoch(MakeEpoch(t, 0.1 * t, {}));
  }
  EXPECT_NEAR(filter.EstimateReader().mean.y, 4.9, 0.3);
}

TEST(FactoredFilterTest, NegativeEvidencePrunesCloseHypotheses) {
  // The object is read once, then repeatedly missed while the reader is
  // nearby: particles right in front of the reader must lose weight, so the
  // variance along the aisle shrinks slower than the mean drifts away from
  // the reader's subsequent positions.
  FactoredParticleFilter filter(MakeLineWorld(), SmallConfig());
  filter.ObserveEpoch(MakeEpoch(0, 2.0, {1000}));
  const auto first = filter.EstimateObject(1000);
  ASSERT_TRUE(first.has_value());
  // Reader moves on without ever reading the object again.
  for (int t = 1; t < 15; ++t) {
    filter.ObserveEpoch(MakeEpoch(t, 2.0 + 0.1 * t, {}));
  }
  const auto later = filter.EstimateObject(1000);
  ASSERT_TRUE(later.has_value());
  const double var0 = first->variance.x + first->variance.y;
  const double var1 = later->variance.x + later->variance.y;
  EXPECT_LT(var1, var0 * 1.5);  // Does not blow up.
}

TEST(FactoredFilterTest, DeterministicForFixedSeed) {
  auto run = [](uint64_t seed) {
    FactoredFilterConfig c = SmallConfig();
    c.seed = seed;
    FactoredParticleFilter filter(MakeLineWorld(), c);
    RunPass(&filter, {1.5, 3.0, 0.0}, 1000, 50, 41);
    return filter.EstimateObject(1000)->mean;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_FALSE(run(5) == run(6));
}

TEST(FactoredFilterTest, SpatialIndexVariantTracksLikeFullProcessing) {
  auto run = [](bool use_index) {
    FactoredFilterConfig c = SmallConfig();
    c.use_spatial_index = use_index;
    FactoredParticleFilter filter(MakeLineWorld(), c);
    RunPass(&filter, {1.5, 2.0, 0.0}, 1000, 70, 43);
    return filter.EstimateObject(1000)->mean;
  };
  const Vec3 with_index = run(true);
  const Vec3 without = run(false);
  // Both must land near the true object; the index is an approximation, not
  // a different answer.
  EXPECT_LT(with_index.DistanceXYTo({1.5, 2.0, 0}), 1.0);
  EXPECT_LT(without.DistanceXYTo({1.5, 2.0, 0}), 1.0);
}

// --------------------------------------------------------- Reinit rules ---

TEST(FactoredFilterTest, FullReinitWhenSeenFarAway) {
  FactoredFilterConfig c = SmallConfig();
  FactoredParticleFilter filter(MakeLineWorld(), c);
  // Seen around y=2 first, then the reader travels (without reading the
  // object) to y=14, far beyond reinit_full_fraction * 4.5 ft.
  RunPass(&filter, {1.5, 2.0, 0.0}, 1000, 30, 47);
  int64_t step = filter.current_step();
  for (double y = 3.0; y < 14.0; y += 0.1) {
    filter.ObserveEpoch(MakeEpoch(step++, y, {}));
  }
  // The object reappears under the reader at y=14: full re-initialization.
  filter.ObserveEpoch(MakeEpoch(step, 14.0, {1000}));
  const auto est = filter.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  // Estimate must have jumped to the new neighbourhood.
  EXPECT_GT(est->mean.y, 8.0);
}

TEST(FactoredFilterTest, HalfReinitKeepsBothHypotheses) {
  FactoredFilterConfig c = SmallConfig();
  c.reinit_keep_fraction = 0.2;   // Force the half-reinit branch at ~4 ft.
  c.reinit_full_fraction = 2.0;
  // Disable object resampling so the kept (low-likelihood) half remains
  // visible in the particle positions for this inspection.
  c.object_resample_threshold = 0.0;
  FactoredParticleFilter filter(MakeLineWorld(), c);
  RunPass(&filter, {1.5, 2.0, 0.0}, 1000, 25, 53);
  int64_t step = filter.current_step();
  for (double y = 2.5; y < 6.0; y += 0.1) {
    filter.ObserveEpoch(MakeEpoch(step++, y, {}));
  }
  // One read from ~4 ft down the aisle: ambiguous.
  filter.ObserveEpoch(MakeEpoch(step, 6.0, {1000}));
  const auto* state = filter.FindObject(1000);
  ASSERT_NE(state, nullptr);
  // Particles should now straddle both neighbourhoods.
  int low = 0, high = 0;
  for (const auto& p : state->particles) {
    if (p.position.y < 4.0) ++low;
    if (p.position.y >= 4.0) ++high;
  }
  EXPECT_GT(low, 0);
  EXPECT_GT(high, 0);
}

// ---------------------------------------------------------- Compression ---

FactoredFilterConfig CompressionConfig() {
  FactoredFilterConfig c = SmallConfig();
  c.use_spatial_index = true;
  c.compression.mode = CompressionMode::kUnseenEpochs;
  c.compression.compress_after_epochs = 5;
  return c;
}

TEST(FactoredFilterTest, ObjectCompressesAfterLeavingScope) {
  FactoredParticleFilter filter(MakeLineWorld(), CompressionConfig());
  RunPass(&filter, {1.5, 2.0, 0.0}, 1000, 40, 59);
  // Keep scanning far past the object so it goes unprocessed (sensing boxes
  // stop overlapping the recorded ones once the reader is ~2 ranges away).
  for (int t = 40; t < 160; ++t) {
    filter.ObserveEpoch(MakeEpoch(t, 0.1 * t, {}));
  }
  const auto* state = filter.FindObject(1000);
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->IsCompressed());
  EXPECT_EQ(filter.NumCompressedObjects(), 1u);
  EXPECT_EQ(filter.NumActiveObjects(), 0u);
}

TEST(FactoredFilterTest, CompressedEstimateStaysNearTruth) {
  FactoredParticleFilter filter(MakeLineWorld(), CompressionConfig());
  const Vec3 truth{1.5, 2.0, 0.0};
  RunPass(&filter, truth, 1000, 40, 61);
  const Vec3 before = filter.EstimateObject(1000)->mean;
  for (int t = 40; t < 160; ++t) {
    filter.ObserveEpoch(MakeEpoch(t, 0.1 * t, {}));
  }
  const auto est = filter.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->support, 0);  // Compressed representation.
  EXPECT_LT(est->mean.DistanceXYTo(before), 0.2);
}

TEST(FactoredFilterTest, DecompressionRevivesParticles) {
  FactoredFilterConfig c = CompressionConfig();
  c.num_decompress_particles = 10;
  FactoredParticleFilter filter(MakeLineWorld(), c);
  const Vec3 truth{1.5, 2.0, 0.0};
  RunPass(&filter, truth, 1000, 40, 67);
  for (int t = 40; t < 160; ++t) {
    filter.ObserveEpoch(MakeEpoch(t, 0.1 * t, {}));
  }
  ASSERT_TRUE(filter.FindObject(1000)->IsCompressed());
  // Second scan pass: travel back (reading nothing) and read the object
  // again -> decompression with few particles.
  int64_t step = filter.current_step();
  for (double y = 15.9; y > 2.0; y -= 0.1) {
    filter.ObserveEpoch(MakeEpoch(step++, y, {}));
  }
  filter.ObserveEpoch(MakeEpoch(step, 2.0, {1000}));
  const auto* state = filter.FindObject(1000);
  EXPECT_FALSE(state->IsCompressed());
  EXPECT_EQ(state->particles.size(), 10u);
  const auto est = filter.EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->mean.DistanceXYTo(truth), 1.2);
}

TEST(FactoredFilterTest, MemoryShrinksWithCompression) {
  FactoredParticleFilter with(MakeLineWorld(), CompressionConfig());
  FactoredFilterConfig no_comp = SmallConfig();
  FactoredParticleFilter without(MakeLineWorld(), no_comp);
  for (auto* f : {&with, &without}) {
    RunPass(f, {1.5, 2.0, 0.0}, 1000, 40, 71);
    for (int t = 40; t < 160; ++t) {
      f->ObserveEpoch(MakeEpoch(t, 0.1 * t, {}));
    }
  }
  EXPECT_LT(with.ApproxMemoryBytes(), without.ApproxMemoryBytes());
}

TEST(FactoredFilterTest, ShelfTagEvidenceCorrectsSystematicBias) {
  WorldModel model = MakeLineWorld(1e-4, {0.0, 0.8, 0.0}, {0.05, 0.05, 0.0});
  FactoredFilterConfig c = SmallConfig();
  c.num_reader_particles = 200;
  FactoredParticleFilter filter(std::move(model), c);
  ConeSensorModel sensor;
  Rng rng(73);
  for (int t = 0; t < 50; ++t) {
    const double y = 0.1 * t;
    std::vector<TagId> tags;
    const Pose pose({0.0, y, 0.0}, 0.0);
    for (TagId shelf_tag : {1u, 2u}) {
      const Vec3 loc = shelf_tag == 1 ? Vec3{1.5, 2.5, 0} : Vec3{1.5, 7.5, 0};
      if (rng.Bernoulli(sensor.ProbReadAt(pose, loc))) tags.push_back(shelf_tag);
    }
    filter.ObserveEpoch(MakeEpoch(t, y, tags, /*reported_offset_y=*/0.8));
  }
  EXPECT_NEAR(filter.EstimateReader().mean.y, 4.9, 0.4);
}

TEST(FactoredFilterTest, ManyObjectsAllTracked) {
  FactoredFilterConfig c = SmallConfig();
  c.num_object_particles = 100;
  FactoredParticleFilter filter(MakeLineWorld(), c);
  // 20 objects spaced along the shelf; read when near.
  std::vector<Vec3> objects;
  for (int i = 0; i < 20; ++i) objects.push_back({1.5, 0.25 + 0.5 * i, 0.0});
  ConeSensorModel sensor;
  Rng rng(79);
  for (int t = 0; t < 120; ++t) {
    const double y = 0.1 * t;
    const Pose pose({0.0, y, 0.0}, 0.0);
    std::vector<TagId> tags;
    for (int i = 0; i < 20; ++i) {
      if (rng.Bernoulli(sensor.ProbReadAt(pose, objects[i]))) {
        tags.push_back(2000 + i);
      }
    }
    filter.ObserveEpoch(MakeEpoch(t, y, tags));
  }
  EXPECT_EQ(filter.NumTrackedObjects(), 20u);
  double total_err = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto est = filter.EstimateObject(2000 + i);
    ASSERT_TRUE(est.has_value()) << "object " << i;
    total_err += est->mean.DistanceXYTo(objects[i]);
  }
  EXPECT_LT(total_err / 20.0, 1.0);
}

}  // namespace
}  // namespace rfid
