// rfid-verify negative corpus: MUST be flagged by [format-window].
//
// The writer version was bumped to 5 but the loader still accepts back to
// version 3 — a 2-version window, against the repo's one-version-back
// deprecation policy. Bumping kVersion requires moving kMinVersion in the
// same change. This file is analyzed, never compiled.
#include <cstdint>
#include <iostream>

#include "util/serialize.h"

namespace rfid {
namespace {

constexpr uint32_t kVersion = 5;     // bumped...
constexpr uint32_t kMinVersion = 3;  // ...without moving the loader floor

}  // namespace

void SaveThing(std::ostream& os) {
  serialize::WriteFramedSection(os, kVersion, [](std::ostream&) {});
}

bool LoadThing(std::istream& is) {
  uint32_t version = 0;
  serialize::ReadFramedSection(is, &version);
  if (version < kMinVersion || version > kVersion) return false;
  return true;
}

}  // namespace rfid
