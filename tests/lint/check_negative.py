#!/usr/bin/env python3
"""Negative-corpus driver: asserts rfid-verify REJECTS a known-bad snippet.

Usage: check_negative.py <check-name> <file.cc> [<file.cc>...]

Passes when rfid-verify exits non-zero AND the output names the expected
check. If the tool ever goes blind to one of these seeded violations — a
parser regression, a deleted check, an over-broad allowlist — this flips
the ctest suite red, the same contract as tests/negative/ for the
thread-safety wall.
"""

import subprocess
import sys
from pathlib import Path


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    check, files = sys.argv[1], sys.argv[2:]
    repo = Path(__file__).resolve().parents[2]
    proc = subprocess.run(
        [sys.executable, str(repo / "tools" / "rfid_verify"),
         "--no-cache", "--file", *files],
        capture_output=True, text=True)
    out = proc.stdout + proc.stderr
    if proc.returncode == 0:
        print(f"FAIL: rfid-verify passed the known-bad snippet(s) {files}")
        print(out)
        return 1
    if f"[{check}]" not in out:
        print(f"FAIL: expected a [{check}] violation, tool reported:")
        print(out)
        return 1
    print(f"OK: rfid-verify rejected {files} with [{check}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
