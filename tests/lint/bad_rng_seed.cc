// rfid-verify negative corpus: MUST be flagged by [rng-discipline].
//
// A raw integer-literal seed outside tests/ and bench/ breaks the per-slot
// stream discipline: every Rng must be seeded through SlotStreamSeed /
// SlotStreamSeedAt or a chained SplitMix64 helper so streams stay keyed by
// (seed, slot, step). This file is analyzed, never compiled.
#include "util/rng.h"

namespace rfid {

uint64_t BadSeed() {
  Rng rng(12345);  // literal seed: no provenance from the seed chain
  return rng.NextU64();
}

}  // namespace rfid
