// rfid-verify negative corpus: MUST be flagged by [lock-hold-io].
//
// PersistLocked REQUIRES mu_ (PR 9's annotations are the lock-discipline
// source of truth) and opens a file while it is held: blocking IO under a
// mutex stalls every waiter. This file is analyzed, never compiled.
#include <fstream>
#include <mutex>

#include "util/thread_annotations.h"

namespace rfid {

class BadWriter {
 public:
  void PersistLocked() RFID_REQUIRES(mu_) {
    std::ofstream out("state.bin");  // file IO while the lock is held
    out << counter_;
  }

 private:
  std::mutex mu_;
  int counter_ = 0;
};

}  // namespace rfid
