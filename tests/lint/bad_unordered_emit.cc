// rfid-verify negative corpus: MUST be flagged by [ordered-emit].
//
// StatsJson is an emit root: anything it reaches feeds rendered output, so
// iterating an unordered container here lets hash order decide byte order.
// This file is analyzed, never compiled.
#include <string>
#include <unordered_map>

namespace rfid {

std::string StatsJson() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  std::string out;
  for (const auto& [k, v] : counts) {  // hash order reaches the output
    out += std::to_string(k) + ":" + std::to_string(v) + ",";
  }
  return out;
}

}  // namespace rfid
