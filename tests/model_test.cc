// Tests for motion, location sensing, object dynamics and the joint model.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "model/cone_sensor.h"
#include "model/location_sensing.h"
#include "model/motion_model.h"
#include "model/object_model.h"
#include "model/world_model.h"

namespace rfid {
namespace {

// -------------------------------------------------------- GaussianLogPdf ---

TEST(GaussianLogPdfTest, MatchesClosedForm) {
  const double lp = GaussianLogPdf(1.0, 0.0, 2.0);
  const double expected =
      -0.5 * (1.0 / 4.0) - std::log(2.0) - 0.5 * std::log(2 * M_PI);
  EXPECT_NEAR(lp, expected, 1e-12);
}

TEST(GaussianLogPdfTest, PeaksAtMean) {
  EXPECT_GT(GaussianLogPdf(0.0, 0.0, 1.0), GaussianLogPdf(0.5, 0.0, 1.0));
}

TEST(GaussianLogPdfTest, ZeroSigmaIsDeterministic) {
  EXPECT_EQ(GaussianLogPdf(3.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(GaussianLogPdf(3.1, 3.0, 0.0),
            -std::numeric_limits<double>::infinity());
}

// ------------------------------------------------------------ MotionModel --

TEST(MotionModelTest, PropagateAppliesDeltaOnAverage) {
  MotionModelParams p;
  p.delta = {0.0, 0.1, 0.0};
  p.sigma = {0.01, 0.01, 0.0};
  const MotionModel m(p);
  Rng rng(1);
  Vec3 sum;
  constexpr int kN = 20000;
  const Pose start({1.0, 2.0, 0.0}, 0.0);
  for (int i = 0; i < kN; ++i) {
    sum += m.Propagate(start, rng).position - start.position;
  }
  EXPECT_NEAR(sum.x / kN, 0.0, 0.001);
  EXPECT_NEAR(sum.y / kN, 0.1, 0.001);
  EXPECT_EQ(sum.z, 0.0);
}

TEST(MotionModelTest, LogPdfPeaksAtExpectedStep) {
  MotionModelParams p;
  p.delta = {0.0, 0.1, 0.0};
  p.sigma = {0.01, 0.01, 0.0};
  const MotionModel m(p);
  const Pose prev({0, 0, 0}, 0.0);
  const Pose at_mean({0.0, 0.1, 0.0}, 0.0);
  const Pose off_mean({0.0, 0.3, 0.0}, 0.0);
  EXPECT_GT(m.LogPdf(prev, at_mean), m.LogPdf(prev, off_mean));
}

TEST(MotionModelTest, ZeroSigmaAxesAreDeterministic) {
  MotionModelParams p;
  p.delta = {0.0, 0.1, 0.0};
  p.sigma = {0.0, 0.01, 0.0};
  const MotionModel m(p);
  Rng rng(2);
  const Pose start({5.0, 0.0, 0.0}, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.Propagate(start, rng).position.x, 5.0);
  }
}

TEST(MotionModelTest, HeadingNoiseWrapAround) {
  MotionModelParams p;
  p.heading_delta = 0.2;
  p.heading_sigma = 0.05;
  const MotionModel m(p);
  Rng rng(3);
  Pose pose({0, 0, 0}, M_PI - 0.05);
  pose = m.Propagate(pose, rng);
  EXPECT_LE(pose.heading, M_PI);
  EXPECT_GT(pose.heading, -M_PI);
}

// ----------------------------------------------------- LocationSensing ----

TEST(LocationSensingTest, ObservationBiasAndNoise) {
  LocationSensingParams p;
  p.mu = {0.5, -0.25, 0.0};
  p.sigma = {0.1, 0.2, 0.0};
  const LocationSensingModel m(p);
  Rng rng(4);
  const Vec3 truth{1.0, 1.0, 0.0};
  Vec3 sum, sum_sq;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const Vec3 obs = m.SampleObservation(truth, rng);
    const Vec3 r = obs - truth;
    sum += r;
    sum_sq += {r.x * r.x, r.y * r.y, r.z * r.z};
  }
  EXPECT_NEAR(sum.x / kN, 0.5, 0.01);
  EXPECT_NEAR(sum.y / kN, -0.25, 0.01);
  const double var_x = sum_sq.x / kN - (sum.x / kN) * (sum.x / kN);
  EXPECT_NEAR(std::sqrt(var_x), 0.1, 0.01);
}

TEST(LocationSensingTest, LogPdfPeaksAtBiasedLocation) {
  LocationSensingParams p;
  p.mu = {0.5, 0.0, 0.0};
  p.sigma = {0.1, 0.1, 0.0};
  const LocationSensingModel m(p);
  const Vec3 truth{0, 0, 0};
  EXPECT_GT(m.LogPdf({0.5, 0.0, 0.0}, truth), m.LogPdf({0.0, 0.0, 0.0}, truth));
}

TEST(LocationSensingTest, ZeroSigmaAxesCarryNoInformation) {
  LocationSensingParams p;
  p.sigma = {0.1, 0.1, 0.0};
  const LocationSensingModel m(p);
  // Different z must not change the density (z sigma is 0 => ignored).
  EXPECT_EQ(m.LogPdf({0, 0, 5}, {0, 0, 0}), m.LogPdf({0, 0, -5}, {0, 0, 0}));
}

// --------------------------------------------------------- ShelfRegions ---

TEST(ShelfRegionsTest, EmptyByDefault) {
  ShelfRegions r;
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.Contains({0, 0, 0}));
}

TEST(ShelfRegionsTest, ContainsRespectsAllRegions) {
  const ShelfRegions r({Aabb({0, 0, 0}, {1, 1, 0}), Aabb({5, 0, 0}, {6, 1, 0})});
  EXPECT_TRUE(r.Contains({0.5, 0.5, 0}));
  EXPECT_TRUE(r.Contains({5.5, 0.5, 0}));
  EXPECT_FALSE(r.Contains({3.0, 0.5, 0}));
}

TEST(ShelfRegionsTest, SamplesLandInsideRegions) {
  const ShelfRegions r({Aabb({0, 0, 0}, {1, 2, 0}), Aabb({5, 0, 0}, {6, 2, 0})});
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(r.Contains(r.SampleUniform(rng)));
  }
}

TEST(ShelfRegionsTest, SamplingProportionalToArea) {
  // First region has 3x the area of the second.
  const ShelfRegions r(
      {Aabb({0, 0, 0}, {3, 1, 0}), Aabb({10, 0, 0}, {11, 1, 0})});
  Rng rng(6);
  int in_first = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    if (r.SampleUniform(rng).x < 5.0) ++in_first;
  }
  EXPECT_NEAR(in_first / static_cast<double>(kN), 0.75, 0.02);
}

TEST(ShelfRegionsTest, BoundingBoxCoversAll) {
  const ShelfRegions r(
      {Aabb({0, 0, 0}, {1, 1, 0}), Aabb({5, -2, 0}, {6, 3, 0})});
  const Aabb& b = r.BoundingBox();
  EXPECT_EQ(b.min, Vec3(0, -2, 0));
  EXPECT_EQ(b.max, Vec3(6, 3, 0));
}

// -------------------------------------------------- ObjectLocationModel ---

TEST(ObjectModelTest, StationaryWhenAlphaZero) {
  ObjectModelParams p;
  p.move_probability = 0.0;
  const ObjectLocationModel m(p, ShelfRegions({Aabb({0, 0, 0}, {10, 10, 0})}));
  Rng rng(7);
  const Vec3 pos{3, 3, 0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.Propagate(pos, rng), pos);
  }
}

TEST(ObjectModelTest, MoveFrequencyMatchesAlpha) {
  ObjectModelParams p;
  p.move_probability = 0.1;
  const ObjectLocationModel m(p, ShelfRegions({Aabb({0, 0, 0}, {10, 10, 0})}));
  Rng rng(8);
  const Vec3 pos{3, 3, 0};
  int moved = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (!(m.Propagate(pos, rng) == pos)) ++moved;
  }
  EXPECT_NEAR(moved / static_cast<double>(kN), 0.1, 0.01);
}

TEST(ObjectModelTest, JumpsLandOnShelves) {
  ObjectModelParams p;
  p.move_probability = 1.0;  // Always jump.
  const ShelfRegions shelves({Aabb({0, 0, 0}, {2, 8, 0})});
  const ObjectLocationModel m(p, shelves);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(shelves.Contains(m.Propagate({100, 100, 0}, rng)));
  }
}

TEST(ObjectModelTest, NoShelvesMeansNoJumps) {
  ObjectModelParams p;
  p.move_probability = 1.0;
  const ObjectLocationModel m(p, ShelfRegions{});
  Rng rng(10);
  const Vec3 pos{1, 2, 0};
  EXPECT_EQ(m.Propagate(pos, rng), pos);
}

// ------------------------------------------------------------ WorldModel --

WorldModel MakeTestModel() {
  std::vector<ShelfTag> shelf_tags = {{1, {1.5, 2.0, 0.0}},
                                      {2, {1.5, 8.0, 0.0}}};
  return WorldModel(std::make_unique<ConeSensorModel>(), MotionModel(),
                    LocationSensingModel(),
                    ObjectLocationModel(
                        ObjectModelParams{},
                        ShelfRegions({Aabb({1.5, 0, 0}, {2.5, 10, 0})})),
                    shelf_tags);
}

TEST(WorldModelTest, ShelfTagLookup) {
  const WorldModel m = MakeTestModel();
  Vec3 loc;
  EXPECT_TRUE(m.IsShelfTag(1, &loc));
  EXPECT_EQ(loc, Vec3(1.5, 2.0, 0.0));
  EXPECT_TRUE(m.IsShelfTag(2));
  EXPECT_FALSE(m.IsShelfTag(999));
}

TEST(WorldModelTest, FindShelfTagReturnsCanonicalPointer) {
  const WorldModel m = MakeTestModel();
  const ShelfTag* s = m.FindShelfTag(2);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->tag, 2u);
  EXPECT_EQ(s, &m.shelf_tags()[1]);
  EXPECT_EQ(m.FindShelfTag(42), nullptr);
}

TEST(WorldModelTest, ShelfTagsNearFiltersByRange) {
  const WorldModel m = MakeTestModel();
  // Cone max range is 4.5 ft; from y=2 only the first shelf tag is in range.
  const auto near = m.ShelfTagsNear({0.0, 2.0, 0.0});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0]->tag, 1u);
  // From the middle, both are within 4.5 ft.
  EXPECT_EQ(m.ShelfTagsNear({1.5, 5.0, 0.0}).size(), 2u);
}

TEST(WorldModelTest, CopyIsDeep) {
  WorldModel a = MakeTestModel();
  WorldModel b = a;
  b.SetSensor(std::make_unique<LogisticSensorModel>());
  // a keeps its cone model: probability at major range differs.
  EXPECT_NE(a.sensor().ProbRead(0.1, 0.0), b.sensor().ProbRead(0.1, 0.0));
}

TEST(WorldModelTest, SetSensorReplacesModel) {
  WorldModel m = MakeTestModel();
  const double before = m.sensor().MaxRange();
  ConeSensorParams p;
  p.major_range = 1.0;
  p.minor_extra_range = 0.5;
  m.SetSensor(std::make_unique<ConeSensorModel>(p));
  EXPECT_NE(m.sensor().MaxRange(), before);
  EXPECT_DOUBLE_EQ(m.sensor().MaxRange(), 1.5);
}

TEST(WorldModelTest, AssignmentIsDeep) {
  WorldModel a = MakeTestModel();
  WorldModel b = MakeTestModel();
  ConeSensorParams p;
  p.major_read_rate = 0.5;
  b.SetSensor(std::make_unique<ConeSensorModel>(p));
  a = b;
  EXPECT_DOUBLE_EQ(a.sensor().ProbRead(0.1, 0.0), 0.5);
  b.SetSensor(std::make_unique<ConeSensorModel>());
  EXPECT_DOUBLE_EQ(a.sensor().ProbRead(0.1, 0.0), 0.5);  // Unaffected.
}

}  // namespace
}  // namespace rfid
