// Operator-state bounds under sustained load: ≥200k synthetic events with
// tag churn and a drifting spatial hotspot stream through all three query
// operators, and every operator's entry count must plateau — unbounded
// streams, bounded state. The seed implementations failed all three ways
// (fire-code kept every cell ever alerted, location-update kept every tag
// ever seen, colocation scanned and kept every tag ever seen).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stream/colocation.h"
#include "stream/query.h"
#include "util/rng.h"

namespace rfid {
namespace {

constexpr int kEvents = 200000;

/// Churny soak stream: ~200 concurrently active tags out of a universe of
/// thousands (so most tags the operators have seen are gone), positions in a
/// hotspot that drifts across thousands of distinct area cells over time.
std::vector<LocationEvent> MakeSoakStream() {
  Rng rng(4242);
  std::vector<LocationEvent> events;
  events.reserve(kEvents);
  double time = 0.0;
  const int universe = 4000;
  const int active = 100;
  for (int i = 0; i < kEvents; ++i) {
    time += 0.05;
    const int base = (i / 2000 * 100) % (universe - active);
    const int tag_index = base + static_cast<int>(rng.NextDouble() * active);
    LocationEvent e;
    e.time = time;
    e.tag = static_cast<TagId>(tag_index + 1);
    // Hotspot center drifts one foot per 40 events: thousands of distinct
    // square-foot cells are touched across the run, a few dozen per window.
    const double cx = i / 40.0;
    e.location = {cx + rng.Gaussian() * 2.0, rng.Gaussian() * 2.0, 0.0};
    events.push_back(e);
  }
  return events;
}

struct Plateau {
  size_t first_half_max = 0;
  size_t second_half_max = 0;
  size_t final = 0;
};

void ExpectPlateaued(const Plateau& p, const char* op) {
  // After warmup the state high-water mark must stop growing: the second
  // half of the stream may not push entries meaningfully past the first
  // half's maximum (10% slop for churn jitter).
  EXPECT_GT(p.first_half_max, 0u) << op;
  EXPECT_LE(p.second_half_max,
            p.first_half_max + p.first_half_max / 10 + 16)
      << op << " state kept growing: " << p.first_half_max << " -> "
      << p.second_half_max;
}

TEST(QuerySoakTest, AllThreeOperatorsHoldBoundedState) {
  const auto events = MakeSoakStream();

  LocationUpdateQuery update(/*min_change_feet=*/0.05, /*ttl_seconds=*/30.0);
  FireCodeConfig fire_config;
  fire_config.window_seconds = 5.0;
  fire_config.weight_limit = 40.0;
  fire_config.disarm_limit = 25.0;
  FireCodeQuery fire(fire_config, [](TagId tag) {
    return 10.0 + static_cast<double>(tag % 7);
  });
  ColocationConfig coloc_config;
  coloc_config.time_slack_seconds = 20.0;
  coloc_config.colocation_radius_feet = 1.0;
  coloc_config.max_pairs = 20000;
  coloc_config.pair_ttl_seconds = 300.0;
  ColocationTracker coloc(coloc_config);

  Plateau update_p, fire_p, coloc_p;
  size_t alerts = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    update.Process(events[i]);
    alerts += fire.Process(events[i]).size();
    coloc.Process(events[i]);
    if ((i + 1) % 5000 == 0) {
      const bool first_half = i < events.size() / 2;
      auto track = [first_half](Plateau* p, size_t entries) {
        auto& high = first_half ? p->first_half_max : p->second_half_max;
        high = std::max(high, entries);
        p->final = entries;
      };
      track(&update_p, update.Stats().entries);
      track(&fire_p, fire.Stats().entries);
      track(&coloc_p, coloc.Stats().entries);
    }
  }

  ExpectPlateaued(update_p, "LocationUpdateQuery");
  ExpectPlateaued(fire_p, "FireCodeQuery");
  ExpectPlateaued(coloc_p, "ColocationTracker");

  // The workload genuinely exercised the operators...
  EXPECT_GT(alerts, 10u);
  EXPECT_GT(update.Stats().evicted, 1000u);
  EXPECT_GT(fire.Stats().evicted, 100000u);
  EXPECT_GT(coloc.Stats().evicted, 1000u);

  // ...and absolute bounds hold: far fewer entries than the ~4000-tag
  // universe / ~5000 cells touched over the run.
  EXPECT_LE(update.num_partitions(), 1200u);
  EXPECT_LE(fire.num_cells(), 200u);
  EXPECT_LE(fire.window_entries(), 200u);
  EXPECT_LE(coloc.num_tracked_tags(), 1200u);
  EXPECT_LE(coloc.num_pairs(), coloc_config.max_pairs + 1);

  // Memory estimates are wired and plausible (single-digit MB, not GB).
  EXPECT_GT(update.Stats().bytes_estimate, 0u);
  EXPECT_LT(coloc.Stats().bytes_estimate, 64u * 1024 * 1024);
}

TEST(QuerySoakTest, FireCodeAloneOverManyCellsStaysBounded) {
  // Regression for the seed's `alerted_` leak: every cell that ever crossed
  // the threshold stayed in the map forever (and `area_weight_` kept
  // FP-residue corpses). Stream a hotspot across 5000 distinct cells; live
  // state must stay around one window's worth.
  FireCodeQuery fire(/*window_seconds=*/5.0, /*weight_limit=*/30.0,
                     [](TagId) { return 20.0; });
  double time = 0.0;
  size_t alerts = 0, max_entries = 0;
  for (int i = 0; i < 100000; ++i) {
    time += 0.1;
    LocationEvent e;
    e.time = time;
    e.tag = static_cast<TagId>(i % 16);
    e.location = {i / 20.0, 0.0, 0.0};  // New cell every 20 events.
    alerts += fire.Process(e).size();
    max_entries = std::max(max_entries, fire.Stats().entries);
  }
  EXPECT_GT(alerts, 1000u);  // Nearly every cell crossed the threshold...
  EXPECT_LE(fire.num_cells(), 8u);       // ...but only the window survives.
  EXPECT_LE(fire.window_entries(), 64u);
  EXPECT_LE(max_entries, 128u);
}

}  // namespace
}  // namespace rfid
