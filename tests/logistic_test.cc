// Tests for the weighted logistic-regression sensor-model fit (§III-C).
#include <gtest/gtest.h>

#include <cmath>

#include "learn/logistic.h"
#include "util/rng.h"

namespace rfid {
namespace {

/// Draws labeled examples from a known logistic model over a grid of
/// distances/angles.
std::vector<LogisticExample> Synthesize(const LogisticSensorModel& truth,
                                        int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<LogisticExample> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    LogisticExample e;
    e.distance = rng.Uniform(0.0, 6.0);
    e.angle = rng.Uniform(0.0, M_PI / 2);
    e.read = rng.Bernoulli(truth.ProbRead(e.distance, e.angle));
    out.push_back(e);
  }
  return out;
}

TEST(LogisticFitTest, RecoversSyntheticModel) {
  const LogisticSensorModel truth({3.0, -0.8, -0.2}, {0.0, -0.5, -1.0});
  const auto examples = Synthesize(truth, 20000, 1);
  const auto fit = FitLogisticSensorModel(examples);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  // Compare predicted probabilities over the domain, not raw coefficients
  // (the quadratic features are correlated).
  double max_dev = 0.0;
  for (double d = 0; d <= 5; d += 0.25) {
    for (double th = 0; th <= 1.5; th += 0.25) {
      max_dev = std::max(max_dev, std::abs(fit.value().model.ProbRead(d, th) -
                                           truth.ProbRead(d, th)));
    }
  }
  EXPECT_LT(max_dev, 0.06);
}

TEST(LogisticFitTest, EmptyExamplesFail) {
  const auto fit = FitLogisticSensorModel({});
  EXPECT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kInvalidArgument);
}

TEST(LogisticFitTest, SingleClassFails) {
  std::vector<LogisticExample> all_read(100, {1.0, 0.1, true, 1.0});
  EXPECT_EQ(FitLogisticSensorModel(all_read).status().code(),
            StatusCode::kFailedPrecondition);
  std::vector<LogisticExample> none_read(100, {1.0, 0.1, false, 1.0});
  EXPECT_EQ(FitLogisticSensorModel(none_read).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LogisticFitTest, NegativeWeightFails) {
  std::vector<LogisticExample> ex = {{1.0, 0.1, true, 1.0},
                                     {2.0, 0.1, false, -0.5}};
  EXPECT_EQ(FitLogisticSensorModel(ex).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LogisticFitTest, ZeroTotalWeightFails) {
  std::vector<LogisticExample> ex = {{1.0, 0.1, true, 0.0},
                                     {2.0, 0.1, false, 0.0}};
  EXPECT_FALSE(FitLogisticSensorModel(ex).ok());
}

TEST(LogisticFitTest, WeightsInfluenceFit) {
  // Same geometry, but reads get 10x weight: predicted read probability at
  // that point must exceed the unweighted fit's.
  std::vector<LogisticExample> base;
  for (int i = 0; i < 200; ++i) {
    base.push_back({1.0, 0.2, i % 2 == 0, 1.0});
    base.push_back({3.0, 0.2, i % 4 == 0, 1.0});
  }
  auto weighted = base;
  for (auto& e : weighted) {
    if (e.read) e.weight = 10.0;
  }
  const auto fit_base = FitLogisticSensorModel(base);
  const auto fit_weighted = FitLogisticSensorModel(weighted);
  ASSERT_TRUE(fit_base.ok());
  ASSERT_TRUE(fit_weighted.ok());
  EXPECT_GT(fit_weighted.value().model.ProbRead(1.0, 0.2),
            fit_base.value().model.ProbRead(1.0, 0.2));
}

TEST(LogisticFitTest, ConvergesInFewIterations) {
  const LogisticSensorModel truth({2.0, -0.6, -0.1}, {0.0, -0.8, -0.5});
  const auto examples = Synthesize(truth, 5000, 3);
  const auto fit = FitLogisticSensorModel(examples);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit.value().iterations, 30);
}

TEST(LogisticFitTest, LogLikelihoodImprovesOverDefault) {
  const LogisticSensorModel truth({3.0, -0.8, -0.2}, {0.0, -0.5, -1.0});
  const auto examples = Synthesize(truth, 5000, 4);
  const auto fit = FitLogisticSensorModel(examples);
  ASSERT_TRUE(fit.ok());
  const LogisticSensorModel default_model;
  EXPECT_GT(fit.value().final_log_likelihood,
            LogisticLogLikelihood(default_model, examples));
}

TEST(LogisticFitTest, FitApproximatesConeShape) {
  // The logistic form must be flexible enough to fit the simulator's cone
  // reasonably (this is what Fig. 5(b) demonstrates visually).
  Rng rng(5);
  std::vector<LogisticExample> examples;
  // Cone: read inside (d < 3, theta < 0.26) with rate 1, decaying wedges.
  auto cone_prob = [](double d, double th) {
    if (th > 0.52 || d > 4.5) return 0.0;
    double p = 1.0;
    if (th > 0.26) p *= 1.0 - (th - 0.26) / 0.26;
    if (d > 3.0) p *= 1.0 - (d - 3.0) / 1.5;
    return p;
  };
  for (int i = 0; i < 30000; ++i) {
    LogisticExample e;
    e.distance = rng.Uniform(0.0, 6.0);
    e.angle = rng.Uniform(0.0, 1.2);
    e.read = rng.Bernoulli(cone_prob(e.distance, e.angle));
    examples.push_back(e);
  }
  const auto fit = FitLogisticSensorModel(examples);
  ASSERT_TRUE(fit.ok());
  const auto& m = fit.value().model;
  // Qualitative shape: high read probability deep inside the cone, low far
  // outside.
  EXPECT_GT(m.ProbRead(1.0, 0.05), 0.6);
  EXPECT_LT(m.ProbRead(5.5, 0.05), 0.35);
  EXPECT_LT(m.ProbRead(1.0, 1.1), 0.35);
}

TEST(LogisticLogLikelihoodTest, PerfectPredictionApproachesZero) {
  LogisticSensorModel m({100.0, -60.0, 0.0}, {0.0, 0.0, 0.0});  // Step at ~1.67.
  std::vector<LogisticExample> ex = {{0.5, 0.0, true, 1.0},
                                     {3.0, 0.0, false, 1.0}};
  EXPECT_NEAR(LogisticLogLikelihood(m, ex), 0.0, 1e-6);
}

}  // namespace
}  // namespace rfid
