// Tests for the synchronizer's bounded-lateness admission: out-of-order
// records within the bound are admitted, older ones are dropped and counted
// (never failing the stream), and the watermark closes contiguous epochs.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "stream/synchronizer.h"

namespace rfid {
namespace {

SynchronizerConfig Bounded(double lateness, double epoch_seconds = 1.0) {
  SynchronizerConfig config;
  config.epoch_seconds = epoch_seconds;
  config.max_lateness_seconds = lateness;
  return config;
}

TEST(SynchronizerLatenessTest, StrictModeStillFailsOnUnorderedInput) {
  StreamSynchronizer sync(1.0);
  EXPECT_TRUE(sync.strict());
  EXPECT_FALSE(sync.Synchronize({{2.0, 1}, {1.0, 2}}, {}).ok());
  EXPECT_FALSE(
      sync.Synchronize({}, {{2.0, {0, 0, 0}}, {1.0, {0, 0, 0}}}).ok());
}

TEST(SynchronizerLatenessTest, OfflineAdmitsOutOfOrderWithinBound) {
  StreamSynchronizer sync(Bounded(2.0));
  // 1.5 arrives after 2.2 but is only 0.7 s behind: admitted.
  const auto epochs = sync.Synchronize({{0.5, 1}, {2.2, 2}, {1.5, 3}}, {});
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs.value().size(), 3u);
  EXPECT_EQ(epochs.value()[1].tags, std::vector<TagId>{3});
  EXPECT_EQ(sync.dropped_late_records(), 0u);
}

TEST(SynchronizerLatenessTest, OfflineDropsBeyondBoundAndCounts) {
  StreamSynchronizer sync(Bounded(1.0));
  // 0.2 is 4.8 s behind the newest record at its arrival: dropped.
  const auto epochs = sync.Synchronize({{1.0, 1}, {5.0, 2}, {0.2, 3}}, {});
  ASSERT_TRUE(epochs.ok());
  EXPECT_EQ(sync.dropped_late_records(), 1u);
  for (const auto& e : epochs.value()) {
    for (TagId tag : e.tags) EXPECT_NE(tag, 3u);
  }
}

TEST(SynchronizerLatenessTest, OfflineMatchesStrictOnOrderedInput) {
  std::vector<TagReading> readings = {{0.1, 1}, {1.4, 2}, {1.6, 2}, {3.9, 4}};
  std::vector<ReaderLocationReport> reports = {{0.5, {1, 2, 0}},
                                               {2.5, {3, 4, 0}}};
  StreamSynchronizer strict(1.0);
  StreamSynchronizer bounded(Bounded(5.0));
  const auto a = strict.Synchronize(readings, reports);
  const auto b = bounded.Synchronize(readings, reports);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].step, b.value()[i].step);
    EXPECT_EQ(a.value()[i].tags, b.value()[i].tags);
    EXPECT_EQ(a.value()[i].has_location, b.value()[i].has_location);
  }
}

TEST(SynchronizerLatenessTest, WatermarkClosesOnlyCompletedEpochs) {
  StreamSynchronizer sync(Bounded(2.0));
  sync.Push(TagReading{0.5, 1});
  // Watermark = 0.5 - 2.0 = -1.5: nothing closeable.
  EXPECT_TRUE(sync.PollWatermark().empty());
  sync.Push(TagReading{3.2, 2});
  // Watermark = 1.2: epoch 0 (ends at 1.0) closes, epoch 1 does not.
  const auto closed = sync.PollWatermark();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].step, 0);
  EXPECT_EQ(closed[0].tags, std::vector<TagId>{1});
}

TEST(SynchronizerLatenessTest, PushIntoClosedEpochIsDroppedAndCounted) {
  StreamSynchronizer sync(Bounded(1.0));
  EXPECT_TRUE(sync.Push(TagReading{0.5, 1}));
  EXPECT_TRUE(sync.Push(TagReading{4.0, 2}));
  ASSERT_FALSE(sync.PollWatermark().empty());  // Closes through epoch 2.
  // Epoch 0 was already emitted: the record must not resurrect it.
  EXPECT_FALSE(sync.Push(TagReading{0.7, 3}));
  EXPECT_EQ(sync.dropped_late_records(), 1u);
  // The stream keeps working afterwards.
  EXPECT_TRUE(sync.Push(TagReading{4.5, 4}));
}

TEST(SynchronizerLatenessTest, PollWatermarkSynthesizesGapEpochs) {
  StreamSynchronizer sync(Bounded(1.0));
  sync.Push(TagReading{0.5, 1});
  sync.Push(TagReading{6.5, 2});
  const auto closed = sync.PollWatermark();  // Watermark 5.5: epochs 0..4.
  ASSERT_EQ(closed.size(), 5u);
  for (size_t i = 0; i < closed.size(); ++i) {
    EXPECT_EQ(closed[i].step, static_cast<int64_t>(i));
  }
  EXPECT_EQ(closed[0].tags, std::vector<TagId>{1});
  for (size_t i = 1; i < closed.size(); ++i) {
    EXPECT_TRUE(closed[i].tags.empty());
    EXPECT_FALSE(closed[i].has_location);
  }
}

TEST(SynchronizerLatenessTest, FinishFillsGapsAfterLastClose) {
  StreamSynchronizer sync(Bounded(1.0));
  sync.Push(TagReading{0.5, 1});
  sync.Push(TagReading{4.2, 2});
  const auto first = sync.PollWatermark();  // Epochs 0..2.
  ASSERT_EQ(first.size(), 3u);
  const auto tail = sync.Finish();  // Epoch 4 pending: 3 must be filled in.
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].step, 3);
  EXPECT_TRUE(tail[0].tags.empty());
  EXPECT_EQ(tail[1].step, 4);
  EXPECT_EQ(tail[1].tags, std::vector<TagId>{2});
}

TEST(SynchronizerLatenessTest, FarFutureRecordIsBoundedByGapCap) {
  // One corrupt far-future clock must not make the synchronizer (and the
  // filter behind it) materialize billions of quiet epochs.
  SynchronizerConfig config = Bounded(1.0);
  config.max_gap_epochs = 10;
  StreamSynchronizer sync(config);
  sync.Push(TagReading{0.5, 1});
  sync.Push(TagReading{1e9, 2});  // Plausible absolute-unix-time bug.
  const auto closed = sync.PollWatermark();
  // Trailing window only: 10 synthesized epochs; the data epoch at index 0
  // still emits (non-empty epochs always do).
  ASSERT_EQ(closed.size(), 11u);
  EXPECT_EQ(closed.front().step, 0);
  EXPECT_EQ(closed.front().tags, std::vector<TagId>{1});
  for (size_t i = 2; i < closed.size(); ++i) {
    EXPECT_EQ(closed[i].step, closed[i - 1].step + 1);
  }
  EXPECT_GT(sync.skipped_gap_epochs(), 900'000'000u);
  // The stream continues normally at the new time base.
  EXPECT_TRUE(sync.Push(TagReading{1e9 + 0.5, 3}));
  // Truly insane timestamps are rejected outright.
  EXPECT_FALSE(
      sync.Push(TagReading{std::numeric_limits<double>::infinity(), 4}));
  EXPECT_FALSE(
      sync.Push(TagReading{std::numeric_limits<double>::quiet_NaN(), 5}));
  EXPECT_FALSE(sync.Push(TagReading{1e200, 6}));
}

TEST(SynchronizerLatenessTest, StateRoundTripContinuesIdentically) {
  const SynchronizerConfig config = Bounded(2.0);
  StreamSynchronizer original(config);
  original.Push(TagReading{0.3, 1});
  original.Push(TagReading{1.7, 2});
  original.Push(TagReading{5.0, 3});
  (void)original.PollWatermark();
  original.Push(TagReading{0.1, 9});  // Late: dropped.

  std::stringstream ss;
  original.SaveState(ss);
  StreamSynchronizer restored(config);
  ASSERT_TRUE(restored.LoadState(ss).ok());
  EXPECT_EQ(restored.dropped_late_records(),
            original.dropped_late_records());
  EXPECT_EQ(restored.watermark(), original.watermark());

  // Identical continuations produce identical epochs.
  for (StreamSynchronizer* sync : {&original, &restored}) {
    sync->Push(TagReading{6.5, 4});
  }
  const auto a = original.PollWatermark();
  const auto b = restored.PollWatermark();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].step, b[i].step);
    EXPECT_EQ(a[i].tags, b[i].tags);
  }
  const auto ta = original.Finish();
  const auto tb = restored.Finish();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].step, tb[i].step);
    EXPECT_EQ(ta[i].tags, tb[i].tags);
  }
}

TEST(SynchronizerLatenessTest, LoadStateRejectsTruncation) {
  StreamSynchronizer sync(Bounded(1.0));
  sync.Push(TagReading{0.5, 1});
  std::stringstream ss;
  sync.SaveState(ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  StreamSynchronizer target(Bounded(1.0));
  EXPECT_FALSE(target.LoadState(truncated).ok());
}

}  // namespace
}  // namespace rfid
