// Tests for geometry/: Vec3, Pose, angle utilities, range-bearing, Aabb.
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/aabb.h"
#include "geometry/vec.h"

namespace rfid {
namespace {

constexpr double kEps = 1e-12;

// ------------------------------------------------------------------ Vec3 ---

TEST(Vec3Test, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, -5, 6};
  EXPECT_EQ(a + b, Vec3(5, -3, 9));
  EXPECT_EQ(a - b, Vec3(-3, 7, -3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3Test, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= {1, 1, 1};
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3Test, DotAndNorm) {
  const Vec3 a{3, 4, 0};
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.NormSq(), 25.0);
  EXPECT_DOUBLE_EQ(a.NormXY(), 5.0);
}

TEST(Vec3Test, DistanceXYIgnoresZ) {
  const Vec3 a{0, 0, 0}, b{3, 4, 100};
  EXPECT_DOUBLE_EQ(a.DistanceXYTo(b), 5.0);
  EXPECT_GT(a.DistanceTo(b), 100.0);
}

// ------------------------------------------------------------ WrapAngle ---

TEST(WrapAngleTest, IdentityInRange) {
  EXPECT_NEAR(WrapAngle(0.5), 0.5, kEps);
  EXPECT_NEAR(WrapAngle(-0.5), -0.5, kEps);
}

TEST(WrapAngleTest, WrapsLargePositive) {
  EXPECT_NEAR(WrapAngle(2 * M_PI + 0.25), 0.25, 1e-9);
  EXPECT_NEAR(WrapAngle(4 * M_PI - 0.25), -0.25, 1e-9);
}

TEST(WrapAngleTest, WrapsLargeNegative) {
  EXPECT_NEAR(WrapAngle(-2 * M_PI - 0.25), -0.25, 1e-9);
}

TEST(WrapAngleTest, ResultAlwaysInHalfOpenInterval) {
  for (double a = -20.0; a <= 20.0; a += 0.1) {
    const double w = WrapAngle(a);
    EXPECT_GT(w, -M_PI - kEps);
    EXPECT_LE(w, M_PI + kEps);
  }
}

// ----------------------------------------------------------------- Pose ---

TEST(PoseTest, FacingMatchesHeading) {
  Pose p({0, 0, 0}, 0.0);
  EXPECT_NEAR(p.Facing().x, 1.0, kEps);
  EXPECT_NEAR(p.Facing().y, 0.0, kEps);
  Pose q({0, 0, 0}, M_PI / 2);
  EXPECT_NEAR(q.Facing().x, 0.0, kEps);
  EXPECT_NEAR(q.Facing().y, 1.0, kEps);
}

TEST(PoseTest, ConstructorWrapsHeading) {
  Pose p({0, 0, 0}, 3 * M_PI);
  EXPECT_NEAR(std::abs(p.heading), M_PI, 1e-9);
}

// --------------------------------------------------------- RangeBearing ---

TEST(RangeBearingTest, DeadAhead) {
  const Pose reader({0, 0, 0}, 0.0);
  const auto rb = ComputeRangeBearing(reader, {3, 0, 0});
  EXPECT_NEAR(rb.distance, 3.0, kEps);
  EXPECT_NEAR(rb.angle, 0.0, kEps);
}

TEST(RangeBearingTest, PerpendicularIsHalfPi) {
  const Pose reader({0, 0, 0}, 0.0);
  const auto rb = ComputeRangeBearing(reader, {0, 2, 0});
  EXPECT_NEAR(rb.distance, 2.0, kEps);
  EXPECT_NEAR(rb.angle, M_PI / 2, 1e-9);
}

TEST(RangeBearingTest, BehindIsPi) {
  const Pose reader({0, 0, 0}, 0.0);
  const auto rb = ComputeRangeBearing(reader, {-1, 0, 0});
  EXPECT_NEAR(rb.angle, M_PI, 1e-9);
}

TEST(RangeBearingTest, HeadingRotatesFrame) {
  const Pose reader({0, 0, 0}, M_PI / 2);  // Facing +y.
  const auto rb = ComputeRangeBearing(reader, {0, 5, 0});
  EXPECT_NEAR(rb.angle, 0.0, 1e-9);
}

TEST(RangeBearingTest, CoincidentPointIsZero) {
  const Pose reader({1, 1, 1}, 0.3);
  const auto rb = ComputeRangeBearing(reader, {1, 1, 1});
  EXPECT_EQ(rb.distance, 0.0);
  EXPECT_EQ(rb.angle, 0.0);
}

TEST(RangeBearingTest, DistanceIncludesZ) {
  const Pose reader({0, 0, 0}, 0.0);
  const auto rb = ComputeRangeBearing(reader, {0, 0, 4});
  EXPECT_NEAR(rb.distance, 4.0, kEps);
}

// ----------------------------------------------------------------- Aabb ---

TEST(AabbTest, EmptyByDefault) {
  Aabb b;
  EXPECT_TRUE(b.IsEmpty());
  EXPECT_EQ(b.Volume(), 0.0);
}

TEST(AabbTest, ExtendPoint) {
  Aabb b;
  b.Extend({1, 2, 3});
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_TRUE(b.Contains({1, 2, 3}));
  b.Extend({-1, 0, 5});
  EXPECT_TRUE(b.Contains({0, 1, 4}));
  EXPECT_FALSE(b.Contains({2, 2, 3}));
}

TEST(AabbTest, ExtendBox) {
  Aabb a({0, 0, 0}, {1, 1, 1});
  a.Extend(Aabb({2, 2, 2}, {3, 3, 3}));
  EXPECT_TRUE(a.Contains({1.5, 1.5, 1.5}));
  a.Extend(Aabb::Empty());  // No-op.
  EXPECT_EQ(a.max.x, 3.0);
}

TEST(AabbTest, FromCenterRadius) {
  const Aabb b = Aabb::FromCenterRadius({1, 2, 0}, 2.0, 0.5);
  EXPECT_EQ(b.min.x, -1.0);
  EXPECT_EQ(b.max.x, 3.0);
  EXPECT_EQ(b.min.y, 0.0);
  EXPECT_EQ(b.max.y, 4.0);
  EXPECT_EQ(b.min.z, -0.5);
  EXPECT_EQ(b.max.z, 0.5);
}

TEST(AabbTest, IntersectsSymmetric) {
  const Aabb a({0, 0, 0}, {2, 2, 2});
  const Aabb b({1, 1, 1}, {3, 3, 3});
  const Aabb c({5, 5, 5}, {6, 6, 6});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(c.Intersects(a));
}

TEST(AabbTest, TouchingBoxesIntersect) {
  const Aabb a({0, 0, 0}, {1, 1, 0});
  const Aabb b({1, 0, 0}, {2, 1, 0});
  EXPECT_TRUE(a.Intersects(b));
}

TEST(AabbTest, EmptyNeverIntersects) {
  const Aabb a({0, 0, 0}, {1, 1, 1});
  EXPECT_FALSE(a.Intersects(Aabb::Empty()));
  EXPECT_FALSE(Aabb::Empty().Intersects(a));
}

TEST(AabbTest, IntersectionBox) {
  const Aabb a({0, 0, 0}, {2, 2, 2});
  const Aabb b({1, 1, 1}, {3, 3, 3});
  const Aabb i = a.Intersection(b);
  EXPECT_EQ(i.min, Vec3(1, 1, 1));
  EXPECT_EQ(i.max, Vec3(2, 2, 2));
  EXPECT_TRUE(a.Intersection(Aabb({9, 9, 9}, {10, 10, 10})).IsEmpty());
}

TEST(AabbTest, VolumeAndMargin) {
  const Aabb b({0, 0, 0}, {2, 3, 4});
  EXPECT_DOUBLE_EQ(b.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(b.Margin(), 9.0);
}

TEST(AabbTest, OverlapVolume) {
  const Aabb a({0, 0, 0}, {2, 2, 2});
  const Aabb b({1, 1, 1}, {3, 3, 3});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(Aabb({5, 5, 5}, {6, 6, 6})), 0.0);
}

TEST(AabbTest, Enlargement) {
  const Aabb a({0, 0, 0}, {1, 1, 1});
  EXPECT_DOUBLE_EQ(a.Enlargement(Aabb({0, 0, 0}, {1, 1, 1})), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Aabb({0, 0, 0}, {2, 1, 1})), 1.0);
}

TEST(AabbTest, CenterAndExtent) {
  const Aabb b({0, 2, 4}, {2, 4, 8});
  EXPECT_EQ(b.Center(), Vec3(1, 3, 6));
  EXPECT_EQ(b.Extent(), Vec3(2, 2, 4));
}

TEST(AabbTest, ContainsBoundary) {
  const Aabb b({0, 0, 0}, {1, 1, 1});
  EXPECT_TRUE(b.Contains({0, 0, 0}));
  EXPECT_TRUE(b.Contains({1, 1, 1}));
  EXPECT_FALSE(b.Contains({1.0 + 1e-9, 0.5, 0.5}));
}

// Property sweep: intersection volume is symmetric and bounded by each box.
class AabbPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AabbPropertyTest, IntersectionProperties) {
  // Deterministic pseudo-random boxes derived from the parameter.
  const int seed = GetParam();
  auto coord = [&](int i) {
    return std::fmod(std::abs(std::sin(seed * 12.9898 + i * 78.233)) * 43758.5,
                     10.0);
  };
  Aabb a, b;
  a.Extend({coord(0), coord(1), coord(2)});
  a.Extend({coord(3), coord(4), coord(5)});
  b.Extend({coord(6), coord(7), coord(8)});
  b.Extend({coord(9), coord(10), coord(11)});

  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), b.OverlapVolume(a));
  EXPECT_LE(a.OverlapVolume(b), a.Volume() + kEps);
  EXPECT_LE(a.OverlapVolume(b), b.Volume() + kEps);
  EXPECT_EQ(a.Intersects(b), a.OverlapVolume(b) > 0 ||
                                 !a.Intersection(b).IsEmpty());
  Aabb merged = a;
  merged.Extend(b);
  EXPECT_GE(merged.Volume() + 1e-9, a.Volume());
  EXPECT_GE(merged.Volume() + 1e-9, b.Volume());
}

INSTANTIATE_TEST_SUITE_P(RandomBoxes, AabbPropertyTest,
                         ::testing::Range(1, 33));

}  // namespace
}  // namespace rfid
