// Tests for the public engine API: configuration validation, event flow,
// statistics, and filter selection.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "test_util.h"

namespace rfid {
namespace {

using testing_util::MakeEpoch;
using testing_util::MakeLineWorld;

EngineConfig SmallEngineConfig() {
  EngineConfig c;
  c.factored.num_reader_particles = 50;
  c.factored.num_object_particles = 200;
  c.factored.seed = 7;
  c.emitter.delay_seconds = 5.0;
  return c;
}

TEST(EngineTest, CreateValidatesParticleCounts) {
  EngineConfig c = SmallEngineConfig();
  c.factored.num_object_particles = 0;
  EXPECT_FALSE(RfidInferenceEngine::Create(MakeLineWorld(), c).ok());
  c = SmallEngineConfig();
  c.filter = EngineConfig::FilterKind::kBasic;
  c.basic.num_particles = -5;
  EXPECT_FALSE(RfidInferenceEngine::Create(MakeLineWorld(), c).ok());
}

TEST(EngineTest, CreateRejectsCompressionWithoutIndex) {
  EngineConfig c = SmallEngineConfig();
  c.factored.use_spatial_index = false;
  c.factored.compression.mode = CompressionMode::kUnseenEpochs;
  const auto engine = RfidInferenceEngine::Create(MakeLineWorld(), c);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, CreateRejectsBadReinitFractions) {
  EngineConfig c = SmallEngineConfig();
  c.factored.reinit_keep_fraction = 2.0;
  c.factored.reinit_full_fraction = 1.0;
  EXPECT_FALSE(RfidInferenceEngine::Create(MakeLineWorld(), c).ok());
}

TEST(EngineTest, CreateRejectsNegativeDelay) {
  EngineConfig c = SmallEngineConfig();
  c.emitter.delay_seconds = -1.0;
  EXPECT_FALSE(RfidInferenceEngine::Create(MakeLineWorld(), c).ok());
}

TEST(EngineTest, ProcessesEpochsAndCountsStats) {
  auto engine = RfidInferenceEngine::Create(MakeLineWorld(),
                                            SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  for (int t = 0; t < 10; ++t) {
    engine.value()->ProcessEpoch(
        MakeEpoch(t, 0.1 * t, t % 2 == 0 ? std::vector<TagId>{1000}
                                         : std::vector<TagId>{}));
  }
  const EngineStats& stats = engine.value()->stats();
  EXPECT_EQ(stats.epochs_processed, 10u);
  EXPECT_EQ(stats.readings_processed, 5u);
  EXPECT_GT(stats.processing_seconds, 0.0);
  EXPECT_GT(stats.ReadingsPerSecond(), 0.0);
  EXPECT_GT(stats.MillisPerReading(), 0.0);
}

TEST(EngineTest, EventsFlowThroughTakeEvents) {
  EngineConfig c = SmallEngineConfig();
  c.emitter.delay_seconds = 3.0;
  auto engine = RfidInferenceEngine::Create(MakeLineWorld(), c);
  ASSERT_TRUE(engine.ok());
  size_t total = 0;
  for (int t = 0; t < 10; ++t) {
    engine.value()->ProcessEpoch(MakeEpoch(t, 2.0, {1000}));
    total += engine.value()->TakeEvents().size();
  }
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(engine.value()->stats().events_emitted, 1u);
  // TakeEvents drained the queue.
  EXPECT_TRUE(engine.value()->TakeEvents().empty());
}

TEST(EngineTest, EstimateObjectDelegatesToFilter) {
  auto engine = RfidInferenceEngine::Create(MakeLineWorld(),
                                            SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine.value()->EstimateObject(1000).has_value());
  engine.value()->ProcessEpoch(MakeEpoch(0, 2.0, {1000}));
  EXPECT_TRUE(engine.value()->EstimateObject(1000).has_value());
}

TEST(EngineTest, BasicFilterKindWorksEndToEnd) {
  EngineConfig c;
  c.filter = EngineConfig::FilterKind::kBasic;
  c.basic.num_particles = 500;
  c.basic.seed = 3;
  auto engine = RfidInferenceEngine::Create(MakeLineWorld(), c);
  ASSERT_TRUE(engine.ok());
  for (int t = 0; t < 20; ++t) {
    engine.value()->ProcessEpoch(MakeEpoch(t, 1.0 + 0.1 * t, {1000}));
  }
  const auto est = engine.value()->EstimateObject(1000);
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->mean.DistanceXYTo({1.5, 2.0, 0}), 2.0);
}

TEST(EngineTest, ScanCompleteFlushesEvents) {
  EngineConfig c = SmallEngineConfig();
  c.emitter.policy = EmitPolicy::kOnScanComplete;
  auto engine = RfidInferenceEngine::Create(MakeLineWorld(), c);
  ASSERT_TRUE(engine.ok());
  engine.value()->ProcessEpoch(MakeEpoch(0, 2.0, {1000, 1001}));
  EXPECT_TRUE(engine.value()->TakeEvents().empty());
  const auto events = engine.value()->NotifyScanComplete(100.0);
  EXPECT_EQ(events.size(), 2u);
}

TEST(EngineTest, ReaderEstimateAvailable) {
  auto engine = RfidInferenceEngine::Create(MakeLineWorld(),
                                            SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  for (int t = 0; t < 20; ++t) {
    engine.value()->ProcessEpoch(MakeEpoch(t, 0.1 * t, {}));
  }
  EXPECT_NEAR(engine.value()->EstimateReader().mean.y, 1.9, 0.3);
}

}  // namespace
}  // namespace rfid
