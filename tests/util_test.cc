// Tests for util/: Status, Result, Rng, TableWriter, Stopwatch.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace rfid {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Invalid("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("tag 7");
  EXPECT_EQ(s.ToString(), "NotFound: tag 7");
}

TEST(StatusTest, StatusCodeNameCoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Invalid("inner"); };
  auto outer = [&]() -> Status {
    RFID_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Result ---

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ------------------------------------------------------------------- Rng ---

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedReproduces) {
  Rng a(99);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.NextU64());
  a.Seed(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU64(), first[i]);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 7.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.5);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(7);
  constexpr uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 500) << "bucket " << b;
  }
}

TEST(RngTest, UniformIntOneIsAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(10);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.Gaussian(5.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(RngTest, CategoricalSingleElement) {
  Rng rng(14);
  EXPECT_EQ(rng.Categorical({5.0}), 0u);
}

TEST(RngTest, CategoricalZeroWeightNeverChosen) {
  Rng rng(15);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.Categorical(weights), 1u);
}

// ----------------------------------------------------------- TableWriter ---

TEST(TableWriterTest, CsvOutput) {
  TableWriter t({"a", "b"});
  ASSERT_TRUE(t.AddRow(std::vector<std::string>{"1", "2"}).ok());
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableWriterTest, RejectsWrongArity) {
  TableWriter t({"a", "b", "c"});
  EXPECT_FALSE(t.AddRow(std::vector<std::string>{"1"}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableWriterTest, DoubleRowsUsePrecision) {
  TableWriter t({"x"});
  ASSERT_TRUE(t.AddRow(std::vector<double>{1.23456}, 2).ok());
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str(), "x\n1.23\n");
}

TEST(TableWriterTest, AlignedOutputPadsColumns) {
  TableWriter t({"name", "v"});
  ASSERT_TRUE(t.AddRow(std::vector<std::string>{"longvalue", "1"}).ok());
  std::ostringstream os;
  t.WriteAligned(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name    "), std::string::npos);
  EXPECT_NE(out.find("longvalue"), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

// ------------------------------------------------------------- Stopwatch ---

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = w.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 500.0);
}

TEST(StopwatchTest, StartResets) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.Start();
  EXPECT_LT(w.ElapsedMillis(), 15.0);
}

TEST(StopwatchTest, UnitsAreConsistent) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = w.ElapsedSeconds();
  const double ms = w.ElapsedMillis();
  EXPECT_NEAR(ms / 1000.0, s, 0.05);
}

}  // namespace
}  // namespace rfid
