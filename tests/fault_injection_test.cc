// The deterministic fault injector, and the checkpoint protocol under
// injected faults: a save killed at ANY fault point must leave the manifest
// on the prior generation, and that generation must load bit-identically.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "core/experiment.h"
#include "model/cone_sensor.h"
#include "serve/checkpoint.h"
#include "serve/site_pipeline.h"
#include "sim/trace.h"
#include "util/fault.h"

namespace rfid {
namespace {

constexpr SiteId kSite = 3;

// ---------------------------------------------------------------------------
// FaultInjector unit behavior
// ---------------------------------------------------------------------------

FaultRule ProbabilityRule(double p) {
  FaultRule rule;
  rule.probability = p;
  return rule;
}

std::vector<int> Schedule(uint64_t seed, uint64_t scope, int hits) {
  FaultInjector injector(seed);
  injector.Arm(FaultPoint::kRecordDecode, ProbabilityRule(0.3));
  std::vector<int> fires;
  fires.reserve(static_cast<size_t>(hits));
  for (int i = 0; i < hits; ++i) {
    fires.push_back(injector.ShouldFire(FaultPoint::kRecordDecode, scope) ? 1
                                                                          : 0);
  }
  return fires;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  const auto a = Schedule(42, 7, 500);
  const auto b = Schedule(42, 7, 500);
  EXPECT_EQ(a, b);
  // And the schedule is non-trivial: a 30% rule over 500 hits fires some
  // but not all of the time.
  int fires = 0;
  for (int f : a) fires += f;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 500);
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  EXPECT_NE(Schedule(42, 7, 500), Schedule(43, 7, 500));
}

TEST(FaultInjectorTest, ScopeSchedulesAreInterleavingIndependent) {
  // Scope A's per-hit decisions must not depend on how many times other
  // scopes hit the same point in between — this is what makes per-site
  // chaos schedules stable under different shard/thread interleavings.
  FaultInjector alone(11);
  alone.Arm(FaultPoint::kPipelineStep, ProbabilityRule(0.25));
  std::vector<int> schedule_alone;
  for (int i = 0; i < 200; ++i) {
    schedule_alone.push_back(alone.ShouldFire(FaultPoint::kPipelineStep, 1));
  }

  FaultInjector interleaved(11);
  interleaved.Arm(FaultPoint::kPipelineStep, ProbabilityRule(0.25));
  std::vector<int> schedule_interleaved;
  for (int i = 0; i < 200; ++i) {
    // Other scopes hammer the point between scope-1 hits.
    interleaved.ShouldFire(FaultPoint::kPipelineStep, 2);
    schedule_interleaved.push_back(
        interleaved.ShouldFire(FaultPoint::kPipelineStep, 1));
    interleaved.ShouldFire(FaultPoint::kPipelineStep, 3);
  }
  EXPECT_EQ(schedule_alone, schedule_interleaved);
}

TEST(FaultInjectorTest, ScopeFilterRestrictsFiring) {
  FaultInjector injector(5);
  FaultRule rule = ProbabilityRule(1.0);
  rule.scopes = {2};
  injector.Arm(FaultPoint::kQueueEnqueue, rule);
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kQueueEnqueue, 1));
  EXPECT_TRUE(injector.ShouldFire(FaultPoint::kQueueEnqueue, 2));
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kQueueEnqueue, 3));
}

TEST(FaultInjectorTest, FireHitFiresExactlyOnThatHit) {
  FaultInjector injector(5);
  FaultRule rule;
  rule.fire_hit = 2;
  injector.Arm(FaultPoint::kCheckpointWrite, rule);
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kCheckpointWrite, 0));  // hit 0
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kCheckpointWrite, 0));  // hit 1
  EXPECT_TRUE(injector.ShouldFire(FaultPoint::kCheckpointWrite, 0));   // hit 2
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kCheckpointWrite, 0));  // hit 3
}

TEST(FaultInjectorTest, MaxFiresCapsTotalFires) {
  FaultInjector injector(5);
  FaultRule rule = ProbabilityRule(1.0);
  rule.max_fires = 3;
  injector.Arm(FaultPoint::kRecordDecode, rule);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.ShouldFire(FaultPoint::kRecordDecode, 0)) ++fires;
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(injector.fires(FaultPoint::kRecordDecode), 3u);
  EXPECT_EQ(injector.hits(FaultPoint::kRecordDecode), 10u);
}

TEST(FaultInjectorTest, NoInjectorInstalledMeansNoFaults) {
  ASSERT_EQ(FaultInjector::Installed(), nullptr);
  EXPECT_FALSE(MaybeInjectFault(FaultPoint::kPipelineStep, 0));
}

TEST(FaultInjectorTest, SnapshotExportsHitAndFireCounts) {
  FaultInjector injector(9);
  injector.Arm(FaultPoint::kCheckpointFsync, ProbabilityRule(1.0));
  injector.ShouldFire(FaultPoint::kCheckpointFsync, 0);
  injector.ShouldFire(FaultPoint::kRecordDecode, 0);  // Unarmed: hit, no fire.
  const auto rows = injector.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].point, FaultPoint::kCheckpointFsync);
  EXPECT_EQ(rows[0].hits, 1u);
  EXPECT_EQ(rows[0].fires, 1u);
  EXPECT_EQ(rows[1].point, FaultPoint::kRecordDecode);
  EXPECT_EQ(rows[1].fires, 0u);
  EXPECT_EQ(injector.total_fires(), 1u);
}

// ---------------------------------------------------------------------------
// Checkpoint torture: kill the save at every fault point
// ---------------------------------------------------------------------------

SitePipelineConfig PipelineConfig() {
  SitePipelineConfig config;
  config.engine.factored.num_reader_particles = 20;
  config.engine.factored.num_object_particles = 60;
  config.engine.factored.seed = 33;
  return config;
}

WorldModel SmallModel() {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 4;
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  EXPECT_TRUE(layout.ok());
  return MakeWorldModel(layout.value(), std::make_unique<ConeSensorModel>());
}

std::vector<ServeRecord> SmallTraceRecords(uint64_t seed) {
  WarehouseConfig wc;
  wc.num_shelves = 1;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 4;
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  EXPECT_TRUE(layout.ok());
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, seed);
  const SimulatedTrace trace = gen.Generate();
  std::vector<ServeRecord> records;
  for (const SimEpoch& epoch : trace.epochs) {
    const SyncedEpoch& obs = epoch.observations;
    if (obs.has_location) {
      ReaderLocationReport report;
      report.time = obs.time;
      report.location = obs.reported_location;
      records.push_back(ServeRecord::Location(kSite, report));
    }
    for (TagId tag : obs.tags) {
      records.push_back(ServeRecord::Reading(kSite, {obs.time, tag}));
    }
  }
  return records;
}

std::string Slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

class CheckpointTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fault_ckpt_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Dir() const { return dir_.string(); }
  std::filesystem::path dir_;
};

TEST_F(CheckpointTortureTest, PriorGenerationSurvivesEveryFaultPoint) {
  auto pipeline = SitePipeline::Create(kSite, SmallModel(), PipelineConfig());
  ASSERT_TRUE(pipeline.ok());
  const std::vector<ServeRecord> records = SmallTraceRecords(71);
  ASSERT_GT(records.size(), 20u);
  for (size_t i = 0; i < records.size() / 2; ++i) {
    pipeline.value()->OnRecord(records[i], nullptr);
  }

  CheckpointWriteOptions options;
  options.max_attempts = 3;
  options.backoff_initial_ms = 0.0;  // No reason to sleep in tests.

  // Clean save: generation 1 becomes the last-good checkpoint.
  CheckpointWriteReport report;
  ASSERT_TRUE(
      SaveSiteCheckpoint(*pipeline.value(), Dir(), options, &report).ok());
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(report.attempts, 1);
  const std::string gen1_path = SiteGenerationPath(Dir(), kSite, 1);
  const std::string reference = Slurp(gen1_path);
  ASSERT_FALSE(reference.empty());

  // Advance the pipeline so later save attempts would write different bytes.
  for (size_t i = records.size() / 2; i < records.size(); ++i) {
    pipeline.value()->OnRecord(records[i], nullptr);
  }

  const FaultPoint kKillPoints[] = {
      FaultPoint::kCheckpointWrite,
      FaultPoint::kCheckpointFsync,
      FaultPoint::kCheckpointRename,
      FaultPoint::kManifestWrite,
  };
  for (const FaultPoint point : kKillPoints) {
    SCOPED_TRACE(FaultPointName(point));
    FaultInjector injector(123);
    injector.Arm(point, ProbabilityRule(1.0));  // Every attempt dies here.
    ScopedFaultInjector installed(&injector);

    CheckpointWriteReport failed;
    const Status status =
        SaveSiteCheckpoint(*pipeline.value(), Dir(), options, &failed);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIOError);
    EXPECT_EQ(failed.generation, 1u);  // Manifest untouched.
    EXPECT_GT(injector.fires(point), 0u);

    // The last-good generation is still what the manifest points at and
    // its bytes are exactly what the clean save wrote.
    CheckpointManifest manifest;
    ASSERT_TRUE(ReadSiteManifest(Dir(), kSite, &manifest).ok());
    EXPECT_EQ(manifest.current, 1u);
    EXPECT_EQ(Slurp(gen1_path), reference);

    // And it restores: a fresh pipeline loads generation 1 and re-saving
    // its checkpoint stream reproduces the reference state bit for bit.
    auto restored = SitePipeline::Create(kSite, SmallModel(), PipelineConfig());
    ASSERT_TRUE(restored.ok());
    CheckpointLoadReport load_report;
    ASSERT_TRUE(
        LoadSiteCheckpoint(Dir(), kSite, restored.value().get(), &load_report)
            .ok());
    EXPECT_EQ(load_report.generation, 1u);
    EXPECT_FALSE(load_report.used_fallback);
    std::ostringstream resaved;
    ASSERT_TRUE(restored.value()->SaveCheckpoint(resaved).ok());
    EXPECT_EQ(resaved.str(), reference);
  }

  // With the injector gone the pending state saves cleanly as generation 2,
  // retaining generation 1 as the fallback.
  CheckpointWriteReport clean;
  ASSERT_TRUE(
      SaveSiteCheckpoint(*pipeline.value(), Dir(), options, &clean).ok());
  EXPECT_EQ(clean.generation, 2u);
  CheckpointManifest manifest;
  ASSERT_TRUE(ReadSiteManifest(Dir(), kSite, &manifest).ok());
  EXPECT_EQ(manifest.current, 2u);
  EXPECT_EQ(manifest.previous, 1u);
  EXPECT_TRUE(std::filesystem::exists(SiteGenerationPath(Dir(), kSite, 1)));
}

TEST_F(CheckpointTortureTest, TransientFaultIsRetriedTransparently) {
  auto pipeline = SitePipeline::Create(kSite, SmallModel(), PipelineConfig());
  ASSERT_TRUE(pipeline.ok());
  const std::vector<ServeRecord> records = SmallTraceRecords(72);
  for (const ServeRecord& record : records) {
    pipeline.value()->OnRecord(record, nullptr);
  }

  FaultInjector injector(7);
  FaultRule one_shot;
  one_shot.fire_hit = 0;  // First write attempt fails; the retry succeeds.
  one_shot.max_fires = 1;
  injector.Arm(FaultPoint::kCheckpointWrite, one_shot);
  ScopedFaultInjector installed(&injector);

  CheckpointWriteOptions options;
  options.max_attempts = 3;
  options.backoff_initial_ms = 0.0;
  CheckpointWriteReport report;
  ASSERT_TRUE(
      SaveSiteCheckpoint(*pipeline.value(), Dir(), options, &report).ok());
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(injector.fires(FaultPoint::kCheckpointWrite), 1u);

  auto restored = SitePipeline::Create(kSite, SmallModel(), PipelineConfig());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(
      LoadSiteCheckpoint(Dir(), kSite, restored.value().get(), nullptr).ok());
}

TEST_F(CheckpointTortureTest, CorruptCurrentGenerationFallsBackOneGeneration) {
  auto pipeline = SitePipeline::Create(kSite, SmallModel(), PipelineConfig());
  ASSERT_TRUE(pipeline.ok());
  const std::vector<ServeRecord> records = SmallTraceRecords(73);
  for (size_t i = 0; i < records.size() / 2; ++i) {
    pipeline.value()->OnRecord(records[i], nullptr);
  }
  CheckpointWriteOptions options;
  options.backoff_initial_ms = 0.0;
  ASSERT_TRUE(
      SaveSiteCheckpoint(*pipeline.value(), Dir(), options, nullptr).ok());
  for (size_t i = records.size() / 2; i < records.size(); ++i) {
    pipeline.value()->OnRecord(records[i], nullptr);
  }
  ASSERT_TRUE(
      SaveSiteCheckpoint(*pipeline.value(), Dir(), options, nullptr).ok());

  // Bit-rot the current generation (flip one payload byte): its section
  // CRC check must fail and the load must fall back to generation 1.
  const std::string gen2_path = SiteGenerationPath(Dir(), kSite, 2);
  std::string bytes = Slurp(gen2_path);
  ASSERT_GT(bytes.size(), 200u);
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream os(gen2_path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<long>(bytes.size()));
  }

  auto restored = SitePipeline::Create(kSite, SmallModel(), PipelineConfig());
  ASSERT_TRUE(restored.ok());
  CheckpointLoadReport report;
  ASSERT_TRUE(
      LoadSiteCheckpoint(Dir(), kSite, restored.value().get(), &report).ok());
  EXPECT_TRUE(report.used_fallback);
  EXPECT_EQ(report.generation, 1u);
}

}  // namespace
}  // namespace rfid
