// Unit tests for the structure-of-arrays particle store.
#include <gtest/gtest.h>

#include "pf/particle_soa.h"

namespace rfid {
namespace {

TEST(ParticleSoaTest, PushBackAndAccessors) {
  ParticleSoa soa;
  EXPECT_TRUE(soa.empty());
  soa.PushBack({1.0, 2.0, 3.0}, 7, 0.5);
  soa.PushBack({-1.0, 0.0, 4.0}, 2, 0.25);
  ASSERT_EQ(soa.size(), 2u);
  EXPECT_EQ(soa.PositionAt(0), Vec3(1.0, 2.0, 3.0));
  EXPECT_EQ(soa.ReaderIdxAt(1), 2u);
  EXPECT_DOUBLE_EQ(soa.WeightAt(1), 0.25);
  EXPECT_DOUBLE_EQ(soa.xs()[1], -1.0);
  EXPECT_DOUBLE_EQ(soa.ys()[0], 2.0);
  EXPECT_DOUBLE_EQ(soa.zs()[1], 4.0);
}

TEST(ParticleSoaTest, ViewIterationMatchesStorage) {
  ParticleSoa soa;
  soa.PushBack({1, 2, 3}, 5, 0.75);
  soa.PushBack({4, 5, 6}, 9, 0.25);
  size_t k = 0;
  double weight_sum = 0.0;
  for (const auto& p : soa) {  // The tests' historical access pattern.
    EXPECT_EQ(p.position, soa.PositionAt(k));
    EXPECT_EQ(p.reader_idx, soa.ReaderIdxAt(k));
    weight_sum += p.weight;
    ++k;
  }
  EXPECT_EQ(k, 2u);
  EXPECT_DOUBLE_EQ(weight_sum, 1.0);
}

TEST(ParticleSoaTest, MutatorsWriteThrough) {
  ParticleSoa soa;
  soa.PushBack({0, 0, 0}, 0, 1.0);
  soa.SetPosition(0, {7, 8, 9});
  soa.SetReaderIdx(0, 3);
  soa.SetWeight(0, 0.125);
  const ParticleSoa::View p = soa[0];
  EXPECT_EQ(p.position, Vec3(7, 8, 9));
  EXPECT_EQ(p.reader_idx, 3u);
  EXPECT_DOUBLE_EQ(p.weight, 0.125);
}

TEST(ParticleSoaTest, SetUniformWeights) {
  ParticleSoa soa;
  for (int i = 0; i < 4; ++i) soa.PushBack({0, 0, 0}, 0, 0.0);
  soa.SetUniformWeights();
  for (const auto& p : soa) EXPECT_DOUBLE_EQ(p.weight, 0.25);
}

TEST(ParticleSoaTest, ComputeBounds) {
  ParticleSoa soa;
  soa.PushBack({-1, 5, 0}, 0, 0.5);
  soa.PushBack({3, -2, 1}, 0, 0.5);
  const Aabb box = soa.ComputeBounds();
  EXPECT_EQ(box.min, Vec3(-1, -2, 0));
  EXPECT_EQ(box.max, Vec3(3, 5, 1));
}

TEST(ParticleSoaTest, GatherFromPreservesReaderPointers) {
  ParticleSoa src;
  src.PushBack({0, 0, 0}, 10, 0.1);
  src.PushBack({1, 1, 1}, 11, 0.2);
  src.PushBack({2, 2, 2}, 12, 0.7);
  ParticleSoa dst;
  dst.GatherFrom(src, {2, 2, 0, 1}, 0.25);
  ASSERT_EQ(dst.size(), 4u);
  EXPECT_EQ(dst.PositionAt(0), Vec3(2, 2, 2));
  EXPECT_EQ(dst.ReaderIdxAt(0), 12u);
  EXPECT_EQ(dst.ReaderIdxAt(2), 10u);
  EXPECT_EQ(dst.ReaderIdxAt(3), 11u);
  for (const auto& p : dst) EXPECT_DOUBLE_EQ(p.weight, 0.25);
}

TEST(ParticleSoaTest, ClearAndShrinkReleaseMemory) {
  ParticleSoa soa;
  for (int i = 0; i < 1000; ++i) soa.PushBack({0, 0, 0}, 0, 0.001);
  EXPECT_GT(soa.ApproxMemoryBytes(), 0u);
  soa.clear();
  EXPECT_TRUE(soa.empty());
  soa.ShrinkToFit();
  EXPECT_EQ(soa.ApproxMemoryBytes(), 0u);
}

}  // namespace
}  // namespace rfid
