// Exact-equivalence tests: the grid-bucketed, lazily-counted
// ColocationTracker must produce bit-identical statistics to the naive
// per-event pairwise scan it replaced, on adversarial randomized streams
// with tag churn (sessions, departures, returns) and spatial clustering.
//
// The reference below is the seed implementation verbatim: per event, scan
// every tag ever seen, skip stale ones, count joint/colocated. The tracker
// replaces the scan with freshness eviction + implicit joint counters + a
// uniform grid, and this test is the proof that the replacement changes the
// complexity, not the answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "stream/colocation.h"
#include "util/rng.h"

namespace rfid {
namespace {

/// Seed-fidelity reference: O(tags ever seen) per event, unbounded state.
class ReferenceColocationScan {
 public:
  explicit ReferenceColocationScan(const ColocationConfig& config)
      : config_(config) {}

  void Process(const LocationEvent& event) {
    for (const auto& [other, report] : last_) {
      if (other == event.tag) continue;
      if (event.time - report.time > config_.time_slack_seconds) continue;
      const PairKey key = other < event.tag ? PairKey{other, event.tag}
                                            : PairKey{event.tag, other};
      PairStatsEntry& stats = pairs_[key];
      ++stats.joint;
      if (event.location.DistanceXYTo(report.location) <=
          config_.colocation_radius_feet) {
        ++stats.colocated;
      }
    }
    last_[event.tag] = {event.time, event.location};
  }

  std::vector<ColocationCandidate> Candidates() const {
    std::vector<ColocationCandidate> out;
    for (const auto& [key, stats] : pairs_) {
      if (stats.joint < config_.min_joint_observations) continue;
      const double ratio = static_cast<double>(stats.colocated) /
                           static_cast<double>(stats.joint);
      if (ratio < config_.min_colocation_ratio) continue;
      out.push_back({key.a, key.b, stats.joint, stats.colocated, ratio});
    }
    std::sort(out.begin(), out.end(),
              [](const ColocationCandidate& x, const ColocationCandidate& y) {
                if (x.ratio != y.ratio) return x.ratio > y.ratio;
                if (x.joint_observations != y.joint_observations) {
                  return x.joint_observations > y.joint_observations;
                }
                return x.a != y.a ? x.a < y.a : x.b < y.b;
              });
    return out;
  }

  struct PairKey {
    TagId a, b;
    bool operator<(const PairKey& o) const {
      return a != o.a ? a < o.a : b < o.b;
    }
  };
  struct PairStatsEntry {
    int joint = 0;
    int colocated = 0;
  };
  struct LastReport {
    double time = 0.0;
    Vec3 location;
  };

  const std::map<PairKey, PairStatsEntry>& pairs() const { return pairs_; }

 private:
  ColocationConfig config_;
  std::unordered_map<TagId, LastReport> last_;
  std::map<PairKey, PairStatsEntry> pairs_;
};

void ExpectSameStats(const ReferenceColocationScan& ref,
                     const ColocationTracker& tracker, int checkpoint) {
  // Every pair the reference knows must exist in the tracker with identical
  // counts, and the tracker must not have invented extra pairs.
  EXPECT_EQ(ref.pairs().size(), tracker.num_pairs())
      << "pair universe diverged at checkpoint " << checkpoint;
  for (const auto& [key, stats] : ref.pairs()) {
    const auto got = tracker.PairStats(key.a, key.b);
    ASSERT_TRUE(got.has_value())
        << "missing pair (" << key.a << "," << key.b << ") at checkpoint "
        << checkpoint;
    EXPECT_EQ(got->joint_observations, stats.joint)
        << "joint mismatch for (" << key.a << "," << key.b
        << ") at checkpoint " << checkpoint;
    EXPECT_EQ(got->colocated_observations, stats.colocated)
        << "colocated mismatch for (" << key.a << "," << key.b
        << ") at checkpoint " << checkpoint;
  }
  // Candidates must match exactly, ratios bitwise.
  const auto want = ref.Candidates();
  const auto got = tracker.Candidates();
  ASSERT_EQ(want.size(), got.size()) << "at checkpoint " << checkpoint;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].a, got[i].a);
    EXPECT_EQ(want[i].b, got[i].b);
    EXPECT_EQ(want[i].joint_observations, got[i].joint_observations);
    EXPECT_EQ(want[i].colocated_observations, got[i].colocated_observations);
    EXPECT_EQ(want[i].ratio, got[i].ratio);  // Bit-identical division.
  }
}

struct StreamParams {
  int events = 4000;
  int universe = 60;         ///< Total distinct tags over the stream.
  int active_window = 12;    ///< Concurrently reporting tags.
  double cohort_shift = 200; ///< Events between active-window slides.
  int clusters = 4;          ///< Spatial clusters; co-located tags share one.
  double mean_dt = 0.4;      ///< Mean inter-event time.
  uint64_t seed = 1;
};

/// Random churn stream: the active tag window slides across the universe, so
/// tags appear, report for a while, go stale, and occasionally return; tags
/// of the same cluster hover near a shared center.
std::vector<LocationEvent> MakeChurnStream(const StreamParams& p) {
  Rng rng(p.seed);
  std::vector<LocationEvent> events;
  events.reserve(static_cast<size_t>(p.events));
  double time = 0.0;
  for (int i = 0; i < p.events; ++i) {
    time += rng.NextDouble() * 2.0 * p.mean_dt;
    const int base =
        static_cast<int>(i / p.cohort_shift) % (p.universe - p.active_window);
    int tag_index = base + static_cast<int>(rng.NextDouble() * p.active_window);
    if (rng.NextDouble() < 0.03) {
      // Occasionally a blast from the past: a departed tag reports again.
      tag_index = static_cast<int>(rng.NextDouble() * p.universe);
    }
    const int cluster = tag_index % p.clusters;
    LocationEvent e;
    e.time = time;
    e.tag = static_cast<TagId>(tag_index + 1);
    e.location = {cluster * 10.0 + rng.Gaussian() * 0.4,
                  cluster * 3.0 + rng.Gaussian() * 0.4, 0.0};
    events.push_back(e);
  }
  return events;
}

TEST(ColocationEquivalenceTest, ChurnStreamsMatchReferenceExactly) {
  for (const uint64_t seed : {11ULL, 23ULL, 47ULL}) {
    StreamParams p;
    p.seed = seed;
    const auto events = MakeChurnStream(p);

    ColocationConfig config;
    config.time_slack_seconds = 3.0;
    config.colocation_radius_feet = 1.0;
    config.min_joint_observations = 3;
    config.min_colocation_ratio = 0.6;
    config.max_pairs = 0;  // Equivalence requires the full pair history.

    ReferenceColocationScan ref(config);
    ColocationTracker tracker(config);
    int checkpoint = 0;
    for (size_t i = 0; i < events.size(); ++i) {
      ref.Process(events[i]);
      tracker.Process(events[i]);
      if ((i + 1) % 500 == 0) ExpectSameStats(ref, tracker, ++checkpoint);
    }
    ExpectSameStats(ref, tracker, ++checkpoint);
  }
}

TEST(ColocationEquivalenceTest, DenseSameTimeBatchesMatchReference) {
  // All tags report at the same timestamps (the serving layer's per-epoch
  // dispatch shape), including ties in time and position.
  ColocationConfig config;
  config.time_slack_seconds = 2.0;
  config.colocation_radius_feet = 1.5;
  config.min_joint_observations = 2;
  config.min_colocation_ratio = 0.5;
  config.max_pairs = 0;

  ReferenceColocationScan ref(config);
  ColocationTracker tracker(config);
  Rng rng(99);
  double time = 0.0;
  int checkpoint = 0;
  for (int round = 0; round < 120; ++round) {
    time += (round % 7 == 6) ? 10.0 : 1.0;  // Periodic gaps: everyone stale.
    for (TagId tag = 1; tag <= 10; ++tag) {
      LocationEvent e;
      e.time = time;
      e.tag = tag;
      const int cluster = static_cast<int>(tag) % 3;
      e.location = {cluster * 4.0 + rng.Gaussian() * 0.5,
                    rng.Gaussian() * 0.5, 0.0};
      ref.Process(e);
      tracker.Process(e);
    }
    if (round % 20 == 19) ExpectSameStats(ref, tracker, ++checkpoint);
  }
  ExpectSameStats(ref, tracker, ++checkpoint);
}

TEST(ColocationEquivalenceTest, TrackerStateStaysBoundedWhereReferenceGrows) {
  // Same stream, radically different state: the reference keeps every tag
  // ever seen; the tracker keeps only the fresh ones.
  StreamParams p;
  p.events = 6000;
  p.universe = 300;
  p.active_window = 10;
  p.cohort_shift = 60;
  const auto events = MakeChurnStream(p);

  ColocationConfig config;
  config.time_slack_seconds = 3.0;
  ColocationTracker tracker(config);
  for (const auto& e : events) tracker.Process(e);

  EXPECT_LE(tracker.num_tracked_tags(), 64u)
      << "departed tags were not evicted";
  EXPECT_GT(tracker.Stats().evicted, 100u);
}

}  // namespace
}  // namespace rfid
