// Tests for the simplified R*-tree: correctness against brute force,
// structural invariants, and growth behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "index/rstar_tree.h"
#include "util/rng.h"

namespace rfid {
namespace {

Aabb RandomBox(Rng& rng, double world = 100.0, double max_extent = 5.0) {
  const Vec3 origin{rng.Uniform(0, world), rng.Uniform(0, world),
                    rng.Uniform(0, 2)};
  const Vec3 extent{rng.Uniform(0.1, max_extent), rng.Uniform(0.1, max_extent),
                    rng.Uniform(0.0, 0.5)};
  return Aabb(origin, origin + extent);
}

std::vector<uint64_t> BruteForce(const std::vector<Aabb>& boxes,
                                 const Aabb& query) {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) out.push_back(i);
  }
  return out;
}

TEST(RStarTreeTest, EmptyTreeQueriesNothing) {
  RStarTree tree;
  std::vector<uint64_t> out;
  tree.Query(Aabb({0, 0, 0}, {10, 10, 10}), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, SingleInsertIsFound) {
  RStarTree tree;
  tree.Insert(Aabb({1, 1, 0}, {2, 2, 0}), 42);
  std::vector<uint64_t> out;
  tree.Query(Aabb({0, 0, 0}, {3, 3, 0}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
  out.clear();
  tree.Query(Aabb({5, 5, 0}, {6, 6, 0}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RStarTreeTest, SizeTracksInserts) {
  RStarTree tree;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(RandomBox(rng), i);
    EXPECT_EQ(tree.size(), static_cast<size_t>(i + 1));
  }
}

TEST(RStarTreeTest, HeightGrowsLogarithmically) {
  RStarTree tree(8);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) tree.Insert(RandomBox(rng), i);
  EXPECT_GE(tree.height(), 2);
  EXPECT_LE(tree.height(), 8);
}

TEST(RStarTreeTest, InvariantsHoldDuringGrowth) {
  RStarTree tree(6);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(RandomBox(rng), i);
    if (i % 50 == 0) {
      EXPECT_TRUE(tree.CheckInvariants()) << "at insert " << i;
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, QueryPointFindsContainingBoxes) {
  RStarTree tree;
  tree.Insert(Aabb({0, 0, 0}, {2, 2, 0}), 1);
  tree.Insert(Aabb({1, 1, 0}, {3, 3, 0}), 2);
  tree.Insert(Aabb({10, 10, 0}, {11, 11, 0}), 3);
  std::vector<uint64_t> out;
  tree.QueryPoint({1.5, 1.5, 0}, &out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
}

TEST(RStarTreeTest, DuplicateBoxesAllReturned) {
  RStarTree tree;
  const Aabb box({0, 0, 0}, {1, 1, 0});
  for (uint64_t i = 0; i < 50; ++i) tree.Insert(box, i);
  std::vector<uint64_t> out;
  tree.Query(box, &out);
  EXPECT_EQ(out.size(), 50u);
  std::set<uint64_t> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), 50u);
}

// Property test over random workloads and node capacities: tree results must
// exactly match brute force.
struct RTreeParam {
  int max_entries;
  int num_boxes;
  uint64_t seed;
};

class RTreeMatchesBruteForce : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(RTreeMatchesBruteForce, AllQueriesAgree) {
  const RTreeParam param = GetParam();
  Rng rng(param.seed);
  RStarTree tree(param.max_entries);
  std::vector<Aabb> boxes;
  for (int i = 0; i < param.num_boxes; ++i) {
    const Aabb box = RandomBox(rng);
    boxes.push_back(box);
    tree.Insert(box, static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(tree.CheckInvariants());

  for (int q = 0; q < 50; ++q) {
    const Aabb query = RandomBox(rng, 100.0, 20.0);
    std::vector<uint64_t> got;
    tree.Query(query, &got);
    std::sort(got.begin(), got.end());
    const auto expected = BruteForce(boxes, query);
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RTreeMatchesBruteForce,
    ::testing::Values(RTreeParam{4, 50, 11}, RTreeParam{4, 300, 12},
                      RTreeParam{8, 300, 13}, RTreeParam{16, 300, 14},
                      RTreeParam{16, 1500, 15}, RTreeParam{32, 800, 16},
                      RTreeParam{5, 97, 17}, RTreeParam{16, 2, 18}));

TEST(RStarTreeTest, ClusteredInsertOrderStillCorrect) {
  // Sorted (worst-case) insertion order, mimicking a reader path of
  // overlapping sensing boxes along the y axis.
  RStarTree tree(8);
  std::vector<Aabb> boxes;
  for (int i = 0; i < 400; ++i) {
    const double y = i * 0.1;
    const Aabb box({-4.5, y - 4.5, 0}, {4.5, y + 4.5, 0});
    boxes.push_back(box);
    tree.Insert(box, static_cast<uint64_t>(i));
  }
  EXPECT_TRUE(tree.CheckInvariants());
  const Aabb query({-1, 10, 0}, {1, 12, 0});
  std::vector<uint64_t> got;
  tree.Query(query, &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForce(boxes, query));
}

TEST(RStarTreeTest, TinyCapacityClampedToFour) {
  RStarTree tree(1);  // Clamped internally.
  Rng rng(20);
  std::vector<Aabb> boxes;
  for (int i = 0; i < 100; ++i) {
    const Aabb box = RandomBox(rng);
    boxes.push_back(box);
    tree.Insert(box, static_cast<uint64_t>(i));
  }
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<uint64_t> got;
  const Aabb query({0, 0, 0}, {100, 100, 2});
  tree.Query(query, &got);
  EXPECT_EQ(got.size(), 100u);
}

}  // namespace
}  // namespace rfid
