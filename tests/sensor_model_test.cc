// Tests for the three sensor models: logistic (Eq. 1), cone (simulator
// ground truth), and spherical (lab antenna).
#include <gtest/gtest.h>

#include <cmath>

#include "model/cone_sensor.h"
#include "model/sensor_model.h"
#include "model/spherical_sensor.h"

namespace rfid {
namespace {

// --------------------------------------------------------------- Sigmoid ---

TEST(SigmoidTest, Midpoint) { EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5); }

TEST(SigmoidTest, Symmetry) {
  for (double x = -5; x <= 5; x += 0.5) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-12);
  }
}

TEST(SigmoidTest, SaturatesWithoutOverflow) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

// ------------------------------------------------------ LogisticSensor ----

TEST(LogisticSensorTest, MatchesEquationOne) {
  // p(read) must equal sigmoid(a0 + a1 d + a2 d^2 + b1 t + b2 t^2), i.e.
  // p(O=0) = 1 / (1 + exp(g)) as printed in the paper.
  const LogisticSensorModel m({2.0, -0.5, -0.1}, {0.0, -1.0, -0.3});
  const double d = 1.5, th = 0.4;
  const double g = 2.0 - 0.5 * d - 0.1 * d * d - 1.0 * th - 0.3 * th * th;
  EXPECT_NEAR(m.ProbRead(d, th), Sigmoid(g), 1e-12);
  EXPECT_NEAR(1.0 - m.ProbRead(d, th), 1.0 / (1.0 + std::exp(g)), 1e-12);
}

TEST(LogisticSensorTest, ProbabilityInUnitInterval) {
  const LogisticSensorModel m;
  for (double d = 0; d < 20; d += 0.5) {
    for (double th = 0; th <= M_PI; th += 0.3) {
      const double p = m.ProbRead(d, th);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(LogisticSensorTest, DecaysWithDistanceForNegativeCoefficients) {
  const LogisticSensorModel m;  // Default has negative a1, a2.
  double prev = 2.0;
  for (double d = 0; d < 10; d += 0.25) {
    const double p = m.ProbRead(d, 0.0);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(LogisticSensorTest, DecaysWithAngle) {
  const LogisticSensorModel m;
  double prev = 2.0;
  for (double th = 0; th <= M_PI; th += 0.1) {
    const double p = m.ProbRead(1.0, th);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(LogisticSensorTest, MaxRangeIsWhereProbFallsOffPeak) {
  // Effective range: where the on-axis rate first falls below 10% of the
  // peak (or 1e-3, whichever is larger).
  const LogisticSensorModel m;
  const double r = m.MaxRange();
  const double cutoff = std::max(1e-3, 0.1 * m.ProbRead(0.0, 0.0));
  EXPECT_GT(r, 0.0);
  EXPECT_LT(m.ProbRead(r + 0.1, 0.0), cutoff);
  EXPECT_GE(m.ProbRead(r - 0.2, 0.0), cutoff);
}

TEST(LogisticSensorTest, MaxRangeBoundedForHeavyTailedFits) {
  // A nearly-flat distance profile (as learned from a narrow-geometry
  // training manifold) must still produce a physically bounded range.
  const LogisticSensorModel m({2.3, -0.55, 0.003}, {0.0, -3.5, -1.5});
  EXPECT_LT(m.MaxRange(), 26.0);
  EXPECT_GT(m.MaxRange(), 1.0);
}

TEST(LogisticSensorTest, SetCoefficientsRecomputesRange) {
  LogisticSensorModel m;
  const double before = m.MaxRange();
  // Much slower decay -> much larger range.
  m.SetCoefficients({4.0, -0.1, -0.01}, {0.0, -1.0, -3.0});
  EXPECT_GT(m.MaxRange(), before);
}

TEST(LogisticSensorTest, WeightVectorRoundTrip) {
  const std::array<double, 5> w = {3.0, -0.7, -0.2, -0.5, -1.5};
  const LogisticSensorModel m = LogisticSensorModel::FromWeightVector(w);
  const auto w2 = m.AsWeightVector();
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(w2[i], w[i]);
}

TEST(LogisticSensorTest, CloneIsIndependent) {
  LogisticSensorModel m;
  auto clone = m.Clone();
  m.SetCoefficients({0.0, -10.0, -10.0}, {0.0, 0.0, 0.0});
  EXPECT_NE(clone->ProbRead(1.0, 0.0), m.ProbRead(1.0, 0.0));
}

TEST(LogisticSensorTest, PoseHelperMatchesRangeBearing) {
  const LogisticSensorModel m;
  const Pose reader({0, 0, 0}, 0.0);
  const Vec3 tag{2.0, 1.0, 0.0};
  const RangeBearing rb = ComputeRangeBearing(reader, tag);
  EXPECT_DOUBLE_EQ(m.ProbReadAt(reader, tag),
                   m.ProbRead(rb.distance, rb.angle));
}

// ----------------------------------------------------------- ConeSensor ---

TEST(ConeSensorTest, MajorRangeHasUniformReadRate) {
  ConeSensorParams p;
  p.major_read_rate = 0.8;
  const ConeSensorModel m(p);
  EXPECT_DOUBLE_EQ(m.ProbRead(0.5, 0.0), 0.8);
  EXPECT_DOUBLE_EQ(m.ProbRead(2.9, 0.1), 0.8);
}

TEST(ConeSensorTest, ZeroOutsideTotalAngle) {
  const ConeSensorModel m;
  const double theta_max = m.params().major_half_angle +
                           m.params().minor_extra_angle;
  EXPECT_EQ(m.ProbRead(1.0, theta_max + 0.01), 0.0);
  EXPECT_EQ(m.ProbRead(1.0, M_PI), 0.0);
}

TEST(ConeSensorTest, ZeroBeyondMaxRange) {
  const ConeSensorModel m;
  EXPECT_EQ(m.ProbRead(m.MaxRange() + 0.01, 0.0), 0.0);
}

TEST(ConeSensorTest, MinorWedgeDecaysLinearlyToZero) {
  const ConeSensorModel m;
  const double t0 = m.params().major_half_angle;
  const double dt = m.params().minor_extra_angle;
  const double rr = m.params().major_read_rate;
  EXPECT_NEAR(m.ProbRead(1.0, t0 + 0.5 * dt), 0.5 * rr, 1e-9);
  EXPECT_NEAR(m.ProbRead(1.0, t0 + 0.99 * dt), 0.01 * rr, 1e-9);
}

TEST(ConeSensorTest, MinorRangeDecaysWithDistance) {
  const ConeSensorModel m;
  const double r0 = m.params().major_range;
  const double dr = m.params().minor_extra_range;
  const double rr = m.params().major_read_rate;
  EXPECT_NEAR(m.ProbRead(r0 + 0.5 * dr, 0.0), 0.5 * rr, 1e-9);
}

TEST(ConeSensorTest, AngleAndRangeFactorsMultiply) {
  const ConeSensorModel m;
  const double t0 = m.params().major_half_angle;
  const double dt = m.params().minor_extra_angle;
  const double r0 = m.params().major_range;
  const double dr = m.params().minor_extra_range;
  EXPECT_NEAR(m.ProbRead(r0 + 0.5 * dr, t0 + 0.5 * dt),
              0.25 * m.params().major_read_rate, 1e-9);
}

TEST(ConeSensorTest, MaxRangeIsMajorPlusMinor) {
  ConeSensorParams p;
  p.major_range = 2.0;
  p.minor_extra_range = 1.0;
  EXPECT_DOUBLE_EQ(ConeSensorModel(p).MaxRange(), 3.0);
}

// Parameterized sweep: probability never exceeds RR_major anywhere.
class ConeSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ConeSweepTest, BoundedByMajorReadRate) {
  ConeSensorParams p;
  p.major_read_rate = GetParam();
  const ConeSensorModel m(p);
  for (double d = 0; d <= m.MaxRange() + 1; d += 0.2) {
    for (double th = 0; th <= M_PI; th += 0.1) {
      const double prob = m.ProbRead(d, th);
      EXPECT_GE(prob, 0.0);
      EXPECT_LE(prob, p.major_read_rate + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ReadRates, ConeSweepTest,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9, 1.0));

// ------------------------------------------------------ SphericalSensor ---

TEST(SphericalSensorTest, PeakAtAntennaCenter) {
  const SphericalSensorModel m;
  EXPECT_DOUBLE_EQ(m.ProbRead(0.0, 0.0), m.params().peak_read_rate);
}

TEST(SphericalSensorTest, ReadableBehindAntenna) {
  // "Spherical with a wide minor range": reads happen even at theta = pi.
  const SphericalSensorModel m;
  EXPECT_GT(m.ProbRead(0.5, M_PI), 0.0);
}

TEST(SphericalSensorTest, BackLobeIsAttenuatedButNonZero) {
  // Bi-static patch antennas have a strong front-back ratio; the emulated
  // pattern keeps a faint back lobe (falloff 0.75 -> 25% of peak at pi).
  const SphericalSensorModel m;
  EXPECT_GT(m.ProbRead(1.0, M_PI), 0.15 * m.ProbRead(1.0, 0.0));
  EXPECT_LT(m.ProbRead(1.0, M_PI), 0.5 * m.ProbRead(1.0, 0.0));
}

TEST(SphericalSensorTest, MonotoneDecayWithDistance) {
  const SphericalSensorModel m;
  double prev = 1.0;
  for (double d = 0; d < 6; d += 0.2) {
    const double p = m.ProbRead(d, 0.2);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(SphericalSensorTest, TimeoutIncreasesPeakRateAndRange) {
  const auto m250 = SphericalSensorModel::ForTimeoutMs(250);
  const auto m500 = SphericalSensorModel::ForTimeoutMs(500);
  const auto m750 = SphericalSensorModel::ForTimeoutMs(750);
  EXPECT_LT(m250.params().peak_read_rate, m500.params().peak_read_rate);
  EXPECT_LT(m500.params().peak_read_rate, m750.params().peak_read_rate);
  EXPECT_LT(m250.MaxRange(), m500.MaxRange());
  EXPECT_LT(m500.MaxRange(), m750.MaxRange());
}

TEST(SphericalSensorTest, TimeoutClamped) {
  const auto lo = SphericalSensorModel::ForTimeoutMs(-50);
  const auto hi = SphericalSensorModel::ForTimeoutMs(99999);
  EXPECT_GT(lo.params().peak_read_rate, 0.0);
  EXPECT_LE(hi.params().peak_read_rate, 0.95);
}

TEST(SphericalSensorTest, NegligibleBeyondMaxRange) {
  const SphericalSensorModel m;
  EXPECT_LT(m.ProbRead(m.MaxRange(), 0.0),
            1e-2 * m.params().peak_read_rate);
}

}  // namespace
}  // namespace rfid
