# Convenience entry points. The build itself is CMake (see README); this
# Makefile only bundles the lint stack so "make lint" runs every analysis
# layer that works on the local toolchain.
#
#   make lint              fast linter + rfid-verify (+ clang-tidy if present)
#   make lint BUILD_DIR=b  point the analyzers at another build tree

BUILD_DIR ?= build

.PHONY: lint
lint:
	python3 tools/lint_invariants.py
	python3 tools/rfid_verify --build-dir $(BUILD_DIR)
	@if command -v clang-tidy >/dev/null 2>&1; then \
	  python3 tools/run_clang_tidy_cached.py --build-dir $(BUILD_DIR); \
	else \
	  echo "lint: clang-tidy not installed — tidy layer skipped (CI runs it)"; \
	fi
