// Self-calibration demo (paper §III-C).
//
// Shows the full calibration workflow a deployment would run on day one:
//  1. collect a small training trace in the fielded environment (here: a
//     simulated aisle with a handful of known-location shelf tags),
//  2. run EM to learn the sensor-model coefficients of Eq. (1) plus the
//     reader motion and location-sensing parameters,
//  3. compare inference accuracy with the uncalibrated, the learned, and
//     the true model on a fresh trace.
#include <cstdio>

#include "core/experiment.h"
#include "learn/em.h"
#include "model/cone_sensor.h"
#include "sim/trace.h"

using namespace rfid;

int main() {
  // --- 1. Training deployment: 20 tags, 8 of them reference (shelf) tags.
  WarehouseConfig train_wc;
  train_wc.num_shelves = 1;
  train_wc.shelf_length = 10.0;
  train_wc.objects_per_shelf = 12;
  train_wc.shelf_tags_per_shelf = 8;
  auto train_layout = BuildWarehouse(train_wc);
  if (!train_layout.ok()) {
    std::fprintf(stderr, "%s\n", train_layout.status().ToString().c_str());
    return 1;
  }
  // The "real" antenna, unknown to the system: a 70%-read-rate cone.
  ConeSensorParams true_params;
  true_params.major_read_rate = 0.7;
  const ConeSensorModel true_sensor(true_params);
  TraceGenerator train_gen(train_layout.value(), RobotConfig{}, {},
                           true_sensor, 33);
  const SimulatedTrace train_trace = train_gen.Generate();
  std::printf("training trace: %zu epochs, %d shelf tags\n",
              train_trace.epochs.size(),
              train_wc.shelf_tags_per_shelf * train_wc.num_shelves);

  // --- 2. EM calibration from an uninformed starting model.
  ExperimentModelOptions options;
  options.motion.delta = {0.0, 0.1, 0.0};
  options.motion.sigma = {0.02, 0.02, 0.0};
  EmConfig em;
  em.iterations = 4;
  em.filter.num_reader_particles = 60;
  em.filter.num_object_particles = 400;
  EmCalibrator calibrator(
      MakeWorldModel(train_layout.value(),
                     std::make_unique<LogisticSensorModel>(), options),
      em);
  auto calibrated = calibrator.Calibrate(train_trace.ObservationsOnly());
  if (!calibrated.ok()) {
    std::fprintf(stderr, "EM: %s\n", calibrated.status().ToString().c_str());
    return 1;
  }
  for (const EmIterationStats& it : calibrated.value().iterations) {
    std::printf(
        "EM iter %d: %zu examples, sensor log-likelihood %.1f, "
        "weights [%.2f %.2f %.2f %.2f %.2f]\n",
        it.iteration, it.num_examples, it.sensor_log_likelihood,
        it.sensor_weights[0], it.sensor_weights[1], it.sensor_weights[2],
        it.sensor_weights[3], it.sensor_weights[4]);
  }
  const MotionModelParams learned_motion =
      calibrated.value().model.motion().params();
  std::printf("learned motion: delta=(%.3f, %.3f) ft/epoch\n",
              learned_motion.delta.x, learned_motion.delta.y);

  // --- 3. Evaluate on a fresh test trace.
  WarehouseConfig test_wc;
  test_wc.num_shelves = 2;
  test_wc.shelf_length = 8.0;
  test_wc.objects_per_shelf = 8;
  test_wc.shelf_tags_per_shelf = 2;
  auto test_layout = BuildWarehouse(test_wc);
  TraceGenerator test_gen(test_layout.value(), RobotConfig{}, {}, true_sensor,
                          34);
  const SimulatedTrace test_trace = test_gen.Generate();

  auto evaluate = [&](const char* name, std::unique_ptr<SensorModel> sensor) {
    EngineConfig config;
    config.factored.seed = 33;
    auto engine = RfidInferenceEngine::Create(
        MakeWorldModel(test_layout.value(), std::move(sensor), options),
        config);
    const TraceEvaluation eval =
        RunEngineOnTrace(engine.value().get(), test_trace);
    std::printf("%-20s mean XY error: %.3f ft (%zu objects)\n", name,
                eval.errors.MeanXY(), eval.objects_evaluated);
    return eval.errors.MeanXY();
  };

  const double uncalibrated =
      evaluate("uncalibrated", std::make_unique<LogisticSensorModel>());
  const double learned =
      evaluate("learned (EM)", calibrated.value().model.sensor().Clone());
  const double oracle = evaluate("true model", true_sensor.Clone());

  if (learned <= oracle) {
    std::printf("\nthe calibrated model matched or beat the true model "
                "(%.3f vs %.3f ft): the learned decay is sharper than the "
                "cone's uniform major-range read rate, so it localizes "
                "better\n",
                learned, oracle);
  } else {
    std::printf("\ncalibration closed %.0f%% of the gap between the "
                "uncalibrated and the true model\n",
                100.0 * (uncalibrated - learned) /
                    std::max(uncalibrated - oracle, 1e-9));
  }
  return 0;
}
