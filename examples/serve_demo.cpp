// Serving-layer walkthrough: two simulated warehouse sites streamed through
// a 2-shard StreamingServer, with continuous queries subscribed on the bus.
//
// What this shows beyond the single-stream examples:
//  * many sites multiplexed through one process (ShardRouter partitions
//    them; each site keeps its own synchronizer + engine),
//  * raw records ingested out of band and admitted by watermark (the
//    synchronizer tolerates bounded out-of-order arrivals),
//  * the paper's §II-B queries running live as subscriptions: a fire-code
//    monitor printing alerts and a location-update stream being counted.
#include <cstdio>
#include <map>

#include "core/experiment.h"
#include "model/cone_sensor.h"
#include "serve/server.h"
#include "sim/trace.h"

using namespace rfid;

namespace {

struct Site {
  SiteId id;
  WarehouseLayout layout;
  std::vector<ServeRecord> records;
};

Site MakeSite(SiteId id, uint64_t seed) {
  WarehouseConfig wc;
  wc.num_shelves = 2;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 12;  // Dense shelves: fire-code pressure.
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, seed);
  const SimulatedTrace trace = gen.Generate();

  Site site;
  site.id = id;
  site.layout = layout.value();
  for (const SimEpoch& epoch : trace.epochs) {
    const SyncedEpoch& obs = epoch.observations;
    if (obs.has_location) {
      ReaderLocationReport report;
      report.time = obs.time;
      report.location = obs.reported_location;
      site.records.push_back(ServeRecord::Location(id, report));
    }
    for (TagId tag : obs.tags) {
      site.records.push_back(ServeRecord::Reading(id, {obs.time, tag}));
    }
  }
  return site;
}

}  // namespace

int main() {
  const Site site_a = MakeSite(1, 8801);
  const Site site_b = MakeSite(2, 8802);

  ServeConfig config;
  config.num_shards = 2;
  config.num_threads = 2;
  config.max_lateness_seconds = 2.0;
  config.engine.factored.num_reader_particles = 40;
  config.engine.factored.num_object_particles = 200;
  config.engine.factored.seed = 88;
  config.engine.emitter.delay_seconds = 10.0;

  std::vector<SiteSpec> specs;
  specs.push_back(
      {site_a.id, MakeWorldModel(site_a.layout,
                                 std::make_unique<ConeSensorModel>())});
  specs.push_back(
      {site_b.id, MakeWorldModel(site_b.layout,
                                 std::make_unique<ConeSensorModel>())});
  auto server = StreamingServer::Create(std::move(specs), config);
  if (!server.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("2 sites -> %d shards: site 1 on shard %d, site 2 on shard %d\n",
              config.num_shards, server.value()->router().ShardOf(1),
              server.value()->router().ShardOf(2));

  // Query 2 (fire code): alert when estimated tag weight concentrated in a
  // 2x2 ft shelf cell exceeds 150 lbs within 30 s (every tag weighs 100 lb).
  std::map<SiteId, int> alerts;
  server.value()->bus().SubscribeFireCode(
      /*window_seconds=*/30.0, /*weight_limit=*/150.0,
      [](TagId) { return 100.0; }, /*cell_size_feet=*/2.0,
      [&alerts](SiteId site, const FireCodeAlert& alert) {
        ++alerts[site];
        std::printf(
            "  FIRE-CODE site %u t=%5.1fs cell(%lld,%lld): %.0f lbs\n", site,
            alert.time, static_cast<long long>(alert.area.x),
            static_cast<long long>(alert.area.y), alert.total_weight);
      });

  // Query 1 (location updates), counted per site.
  std::map<SiteId, int> updates;
  server.value()->bus().SubscribeLocationUpdates(
      0.25, [&updates](SiteId site, const LocationEvent&) {
        ++updates[site];
      });

  // Stream both sites' records through the running server, interleaved as a
  // network frontend would deliver them.
  server.value()->Start();
  size_t a = 0, b = 0;
  while (a < site_a.records.size() || b < site_b.records.size()) {
    const bool take_a =
        b >= site_b.records.size() ||
        (a < site_a.records.size() &&
         site_a.records[a].Time() <= site_b.records[b].Time());
    server.value()->Ingest(take_a ? site_a.records[a++]
                                  : site_b.records[b++]);
  }
  server.value()->Stop();
  server.value()->Flush();

  std::printf("\nper-site results:\n");
  for (SiteId site : {SiteId{1}, SiteId{2}}) {
    const SitePipeline* pipeline = server.value()->FindSite(site);
    const SitePipelineStats stats = pipeline->Stats();
    std::printf(
        "  site %u: %llu records, %zu epochs, %zu events, %d location "
        "updates, %d fire-code alerts\n",
        site, static_cast<unsigned long long>(stats.records_processed),
        stats.engine.epochs_processed, stats.engine.events_emitted,
        updates[site], alerts[site]);
  }
  std::printf("\nserver stats JSON:\n%s\n",
              server.value()->StatsJson().c_str());

  const bool ok = updates[1] > 0 && updates[2] > 0;
  return ok ? 0 : 2;
}
