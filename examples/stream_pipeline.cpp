// Raw-stream pipeline demo (paper §II-A): from *unsynchronized* raw streams
// to clean events, using the online StreamSynchronizer.
//
// The other examples feed the engine pre-synchronized epochs. Real readers
// produce two independent streams — RFID readings (time, tag_id) and
// location reports (time, x, y, z) — slightly out of sync. This example
// flattens a simulated trace back into raw streams, interleaves them, pushes
// them through the online synchronizer, and feeds completed epochs to the
// engine as they close.
#include <algorithm>
#include <cstdio>

#include "core/experiment.h"
#include "model/cone_sensor.h"
#include "sim/trace.h"
#include "stream/synchronizer.h"

using namespace rfid;

int main() {
  WarehouseConfig wc;
  wc.num_shelves = 2;
  wc.shelf_length = 8.0;
  wc.objects_per_shelf = 8;
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, 55);
  const SimulatedTrace trace = gen.Generate();

  // Flatten the trace into raw streams with sub-epoch timestamp jitter,
  // as a reader driver would deliver them.
  Rng rng(56);
  std::vector<TagReading> readings;
  std::vector<ReaderLocationReport> reports;
  for (const SimEpoch& epoch : trace.epochs) {
    const double t0 = epoch.observations.time;
    for (TagId tag : epoch.observations.tags) {
      readings.push_back({t0 + rng.Uniform(0.0, 0.9), tag});
    }
    ReaderLocationReport report;
    report.time = t0 + rng.Uniform(0.0, 0.9);
    report.location = epoch.observations.reported_location;
    report.has_heading = epoch.observations.has_heading;
    report.heading = epoch.observations.reported_heading;
    reports.push_back(report);
  }
  std::sort(readings.begin(), readings.end(),
            [](const TagReading& a, const TagReading& b) {
              return a.time < b.time;
            });
  std::printf("raw streams: %zu RFID readings, %zu location reports\n",
              readings.size(), reports.size());

  // Online synchronization: push records in time order, poll for closed
  // epochs, feed them to the engine immediately.
  EngineConfig config;
  config.factored.seed = 55;
  config.emitter.delay_seconds = 45.0;
  auto engine = RfidInferenceEngine::Create(
      MakeWorldModel(layout.value(), sensor.Clone()), config);

  StreamSynchronizer sync(/*epoch_seconds=*/1.0);
  size_t r = 0, l = 0, epochs = 0, events = 0;
  auto drain = [&](double now) {
    for (const SyncedEpoch& epoch : sync.Poll(now)) {
      engine.value()->ProcessEpoch(epoch);
      events += engine.value()->TakeEvents().size();
      ++epochs;
    }
  };
  while (r < readings.size() || l < reports.size()) {
    const double tr = r < readings.size() ? readings[r].time : 1e18;
    const double tl = l < reports.size() ? reports[l].time : 1e18;
    if (tr <= tl) {
      drain(tr);
      sync.Push(readings[r++]);
    } else {
      drain(tl);
      sync.Push(reports[l++]);
    }
  }
  for (const SyncedEpoch& epoch : sync.Finish()) {
    engine.value()->ProcessEpoch(epoch);
    events += engine.value()->TakeEvents().size();
    ++epochs;
  }

  ErrorStats err;
  const double end_time = trace.epochs.back().observations.time;
  for (TagId tag : trace.truth.AllTags()) {
    const auto est = engine.value()->EstimateObject(tag);
    const auto truth = trace.truth.PositionAt(tag, end_time);
    if (est && truth.ok()) err.Add(est->mean, truth.value());
  }
  std::printf("synchronized %zu epochs online; %zu events emitted\n", epochs,
              events);
  std::printf("final mean XY error: %.3f ft over %zu objects\n", err.MeanXY(),
              err.count());
  return err.count() > 0 && err.MeanXY() < 1.5 ? 0 : 2;
}
