// Fire-code monitoring (paper §II-B, query 2).
//
// A warehouse stores objects of known weight. The fire code says: display of
// solid merchandise shall not exceed 200 pounds per square foot of shelf
// area. Raw RFID streams cannot answer this — object locations are never
// observed directly. This example runs the inference engine to produce the
// clean located event stream and evaluates the windowed group-by/having
// query over it, alerting on overloaded square-foot cells.
#include <cstdio>
#include <unordered_map>

#include "core/experiment.h"
#include "model/cone_sensor.h"
#include "sim/trace.h"
#include "stream/query.h"

using namespace rfid;

int main() {
  // Warehouse with heavy objects concentrated on the first shelf.
  WarehouseConfig wc;
  wc.num_shelves = 2;
  wc.shelf_length = 6.0;
  wc.objects_per_shelf = 12;  // Dense: 2 objects per foot of shelf.
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  if (!layout.ok()) {
    std::fprintf(stderr, "%s\n", layout.status().ToString().c_str());
    return 1;
  }

  // Object weights: the first shelf holds 110 lb crates, the second 20 lb
  // boxes. Two 110 lb crates in one square foot violate the fire code.
  std::unordered_map<TagId, double> weights;
  for (const ObjectPlacement& o : layout.value().objects) {
    weights[o.tag] = o.position.y < 7.0 ? 110.0 : 20.0;
  }

  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), RobotConfig{}, {}, sensor, 7);
  const SimulatedTrace trace = gen.Generate();

  EngineConfig config;
  config.factored.num_object_particles = 800;
  config.factored.seed = 7;
  // Output point: upon completion of the full area scan (paper §II-A), so
  // every object's event lands in the same query window.
  config.emitter.policy = EmitPolicy::kOnScanComplete;
  auto engine = RfidInferenceEngine::Create(
      MakeWorldModel(layout.value(), sensor.Clone()), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Query 2 of the paper: [Range 5 seconds] window, group by square-foot
  // area, having sum(weight) > 200 pounds. The disarm threshold below the
  // limit keeps a cell hovering around 200 lbs from flapping between
  // alerting and re-arming on every report.
  FireCodeConfig query_config;
  query_config.window_seconds = 5.0;
  query_config.weight_limit = 200.0;
  query_config.disarm_limit = 150.0;
  FireCodeQuery query(query_config, [&](TagId tag) {
    auto it = weights.find(tag);
    return it == weights.end() ? 0.0 : it->second;
  });

  int alerts = 0;
  for (const SimEpoch& epoch : trace.epochs) {
    engine.value()->ProcessEpoch(epoch.observations);
  }
  const double scan_end = trace.epochs.back().observations.time;
  for (const LocationEvent& event :
       engine.value()->NotifyScanComplete(scan_end)) {
    for (const FireCodeAlert& alert : query.Process(event)) {
      std::printf(
          "FIRE CODE ALERT t=%5.0fs: square-foot cell (%lld, %lld) holds "
          "%.0f lbs (> 200 lbs)\n",
          alert.time, static_cast<long long>(alert.area.x),
          static_cast<long long>(alert.area.y), alert.total_weight);
      ++alerts;
    }
  }
  std::printf("\nscan finished: %d overloaded square-foot cell(s) detected\n",
              alerts);
  std::printf("(events processed through the engine: %zu)\n",
              engine.value()->stats().events_emitted);
  const OperatorStats op = query.Stats();
  std::printf(
      "(query state: %zu entries, ~%zu bytes, %llu window entries evicted)\n",
      op.entries, op.bytes_estimate,
      static_cast<unsigned long long>(op.evicted));
  return alerts > 0 ? 0 : 2;  // The dense shelf must trip the code.
}
