// Quickstart: simulate a small warehouse scan with a mobile RFID reader and
// turn its noisy streams into clean location events.
//
// Demonstrates the minimal end-to-end path:
//   1. lay out a warehouse (shelves, shelf tags, objects),
//   2. generate a noisy trace with the cone-antenna simulator,
//   3. run the factored-particle-filter engine over the stream,
//   4. print the emitted location events and the final accuracy.
#include <cstdio>

#include "core/experiment.h"
#include "model/cone_sensor.h"
#include "sim/trace.h"

using namespace rfid;

int main() {
  // 1. A two-shelf warehouse with 16 objects and 4 known-location shelf tags.
  WarehouseConfig wc;
  wc.num_shelves = 2;
  wc.shelf_length = 8.0;
  wc.objects_per_shelf = 8;
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  if (!layout.ok()) {
    std::fprintf(stderr, "layout: %s\n", layout.status().ToString().c_str());
    return 1;
  }

  // 2. A robot scans the aisle at 0.1 ft/epoch; readings go through the
  //    paper's cone-shaped antenna pattern with 100% major-range read rate.
  ConeSensorModel true_sensor;
  RobotConfig robot;
  TraceGenerator gen(layout.value(), robot, ObjectMovementConfig{},
                     true_sensor, /*seed=*/42);
  const SimulatedTrace trace = gen.Generate();
  std::printf("simulated %zu epochs, warehouse of %zu objects\n",
              trace.epochs.size(), layout.value().objects.size());

  // 3. Build the engine: factored filter + spatial index, emitting an event
  //    60 s after each object enters the reader's scope.
  WorldModel model =
      MakeWorldModel(layout.value(), true_sensor.Clone());
  EngineConfig config;
  config.factored.num_object_particles = 1000;
  config.emitter.delay_seconds = 60.0;
  auto engine = RfidInferenceEngine::Create(std::move(model), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 4. Stream the epochs through and print clean events as they emerge.
  std::vector<LocationEvent> all_events;
  for (const SimEpoch& epoch : trace.epochs) {
    engine.value()->ProcessEpoch(epoch.observations);
    for (const LocationEvent& e : engine.value()->TakeEvents()) {
      std::printf("event t=%6.0fs tag=%u at (%.2f, %.2f) +/- %.2f ft\n",
                  e.time, e.tag, e.location.x, e.location.y,
                  e.stats ? e.stats->rmse_radius : 0.0);
      all_events.push_back(e);
    }
  }

  const ErrorStats event_err = EvaluateEvents(all_events, trace.truth);
  ErrorStats final_err;
  for (TagId tag : trace.truth.AllTags()) {
    auto est = engine.value()->EstimateObject(tag);
    auto truth = trace.truth.PositionAt(tag, trace.epochs.back().observations.time);
    if (est && truth.ok()) final_err.Add(est->mean, truth.value());
  }
  std::printf("\n%zu events emitted; mean event error %.3f ft (XY)\n",
              all_events.size(), event_err.MeanXY());
  std::printf("final estimates: mean error %.3f ft (XY) over %zu objects\n",
              final_err.MeanXY(), final_err.count());
  std::printf("throughput: %.0f readings/s\n",
              engine.value()->stats().ReadingsPerSecond());
  return 0;
}
