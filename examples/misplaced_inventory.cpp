// Misplaced-inventory detection (one of the paper's §I motivating tasks:
// "identifying misplaced inventory in retail stores").
//
// Every object has an assigned shelf. The engine infers object locations
// from the noisy mobile-reader stream; the location-update query (paper
// §II-B, query 1) feeds a checker that flags objects whose inferred location
// lies on the wrong shelf. The simulation moves a few objects mid-scan so
// there is something to find.
#include <cstdio>
#include <unordered_map>

#include "core/experiment.h"
#include "model/cone_sensor.h"
#include "sim/trace.h"
#include "stream/query.h"

using namespace rfid;

namespace {

/// Index of the shelf box containing p, or -1.
int ShelfOf(const WarehouseLayout& layout, const Vec3& p) {
  for (size_t i = 0; i < layout.shelf_boxes.size(); ++i) {
    // Widen in y slightly: inferred locations jitter around shelf edges.
    Aabb box = layout.shelf_boxes[i];
    box.min.y -= 0.5;
    box.max.y += 0.5;
    if (box.Contains({box.Center().x, p.y, p.z})) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

int main() {
  WarehouseConfig wc;
  wc.num_shelves = 4;
  wc.shelf_length = 8.0;
  wc.shelf_gap = 2.0;
  wc.objects_per_shelf = 6;
  wc.shelf_tags_per_shelf = 2;
  auto layout = BuildWarehouse(wc);
  if (!layout.ok()) {
    std::fprintf(stderr, "%s\n", layout.status().ToString().c_str());
    return 1;
  }

  // Assigned shelf of every object (its initial placement).
  std::unordered_map<TagId, int> assigned_shelf;
  for (const ObjectPlacement& o : layout.value().objects) {
    assigned_shelf[o.tag] = ShelfOf(layout.value(), o.position);
  }

  // Two scan rounds; between them, objects get moved ~10 ft (to another
  // shelf) every 300 s.
  RobotConfig robot;
  robot.rounds = 2;
  ObjectMovementConfig mv;
  mv.enabled = true;
  mv.interval_seconds = 300.0;
  mv.distance = 10.0;
  ConeSensorModel sensor;
  TraceGenerator gen(layout.value(), robot, mv, sensor, 21);
  const SimulatedTrace trace = gen.Generate();
  std::printf("simulated %zu epochs; %zu object movement(s) injected\n",
              trace.epochs.size(), trace.truth.events().size());

  ExperimentModelOptions options;
  options.motion.delta = {};  // Round trip: random-walk motion prior.
  options.motion.sigma = {0.05, 0.15, 0.0};
  options.object_move_probability = 1e-3;
  EngineConfig config;
  config.factored.seed = 21;
  config.emitter.delay_seconds = 30.0;
  config.emitter.scope_timeout_epochs = 60;
  auto engine = RfidInferenceEngine::Create(
      MakeWorldModel(layout.value(), sensor.Clone(), options), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  LocationUpdateQuery update_query(/*min_change_feet=*/1.0);
  std::unordered_map<TagId, int> flagged;
  for (const SimEpoch& epoch : trace.epochs) {
    engine.value()->ProcessEpoch(epoch.observations);
    for (const LocationEvent& event : engine.value()->TakeEvents()) {
      const auto update = update_query.Process(event);
      if (!update.has_value()) continue;
      const int current = ShelfOf(layout.value(), update->location);
      const int expected = assigned_shelf[update->tag];
      if (current >= 0 && current != expected) {
        std::printf(
            "t=%5.0fs MISPLACED tag %u: inferred on shelf %d at "
            "(%.1f, %.1f), assigned shelf %d\n",
            update->time, update->tag, current, update->location.x,
            update->location.y, expected);
        flagged[update->tag] = current;
      }
    }
  }

  // Score against ground truth: which objects really ended up elsewhere?
  int truly_moved_across_shelves = 0, detected = 0;
  const double end_time = trace.epochs.back().observations.time;
  for (const MovementEvent& ev : trace.truth.events()) {
    const auto final_pos = trace.truth.PositionAt(ev.tag, end_time);
    if (!final_pos.ok()) continue;
    if (ShelfOf(layout.value(), final_pos.value()) !=
        assigned_shelf[ev.tag]) {
      ++truly_moved_across_shelves;
      if (flagged.count(ev.tag)) ++detected;
    }
  }
  std::printf("\n%d object(s) truly ended on a wrong shelf; %d detected, "
              "%zu flagged in total\n",
              truly_moved_across_shelves, detected, flagged.size());
  return 0;
}
